package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	imfant "repro"
	iobs "repro/internal/obs"
)

func testRegistry(t *testing.T, opts imfant.Options) *imfant.Registry {
	t.Helper()
	reg, err := imfant.NewRegistry([]string{"needle[0-9]+", "ab+c", "xyz"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestMetricsParsesAsOpenMetrics(t *testing.T) {
	reg := testRegistry(t, imfant.Options{Latency: true})
	in := []byte("padding needle42 padding abbbc xyz padding")
	reg.FindAll(in)
	if _, err := reg.CountParallel(in, 2); err != nil {
		t.Fatal(err)
	}
	h := Handler(reg)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics: %d\n%s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("content type = %q", ct)
	}
	fams, err := iobs.Parse(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatalf("/metrics output invalid: %v\n%s", err, rec.Body.String())
	}
	for _, want := range []string{
		"imfant_scans", "imfant_bytes_scanned", "imfant_matches",
		"imfant_degraded", "imfant_ruleset_version", "imfant_ruleset_draining",
		"imfant_ruleset_rules", "imfant_stage_latency_seconds",
	} {
		if _, ok := fams[want]; !ok {
			t.Errorf("family %s missing from /metrics:\n%s", want, rec.Body.String())
		}
	}
	if f := fams["imfant_ruleset_version"]; f.Samples[0].Value != 1 {
		t.Errorf("ruleset_version = %v, want 1", f.Samples[0].Value)
	}
	if f := fams["imfant_matches"]; f.Samples[0].Value == 0 {
		t.Error("matches counter is zero despite matching traffic")
	}
	// Latency attribution is on and scans ran: the stage histogram must
	// carry at least the scan stage.
	found := false
	for _, smp := range fams["imfant_stage_latency_seconds"].Samples {
		if smp.Labels["stage"] == "scan" {
			found = true
		}
	}
	if !found {
		t.Error("stage_latency_seconds has no scan-stage series")
	}
}

func TestStatuszReflectsHotSwap(t *testing.T) {
	reg := testRegistry(t, imfant.Options{Latency: true})
	h := Handler(reg)

	// Traffic on version 1, with a stream pinning it across the swap.
	var matches []imfant.Match
	sm := reg.NewStreamMatcher(func(m imfant.Match) { matches = append(matches, m) })
	if _, err := sm.Write([]byte("needle7 ")); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	if !strings.Contains(rec.Body.String(), "ruleset version: 1") {
		t.Fatalf("statusz before swap:\n%s", rec.Body.String())
	}

	// Hot swap mid-traffic: the very next request must observe version 2
	// and the still-open stream as a draining old version.
	rs2, err := imfant.Compile([]string{"swapped[a-z]+"}, imfant.Options{Latency: true})
	if err != nil {
		t.Fatal(err)
	}
	reg.Swap(rs2)

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "ruleset version: 2") {
		t.Fatalf("statusz after swap does not show version 2:\n%s", body)
	}
	if !strings.Contains(body, "draining: 1 old") {
		t.Fatalf("statusz does not show the pinned old version draining:\n%s", body)
	}
	if !strings.Contains(body, "rules: 1") {
		t.Fatalf("statusz still describes the old ruleset:\n%s", body)
	}

	// Close the stream: drain completes, and /metrics agrees.
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	fams, err := iobs.Parse(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if v := fams["imfant_ruleset_draining"].Samples[0].Value; v != 0 {
		t.Errorf("ruleset_draining = %v after stream close, want 0", v)
	}
	if v := fams["imfant_ruleset_version"].Samples[0].Value; v != 2 {
		t.Errorf("ruleset_version = %v, want 2", v)
	}
}

func TestTracezTailAndCauses(t *testing.T) {
	reg := testRegistry(t, imfant.Options{Latency: true, TraceCapacity: 256})
	h := Handler(reg)
	reg.FindAll([]byte("abc needle1 abbc"))

	// A swap records a ruleset_swap event in the outgoing ring; the new
	// ring starts with its own swap event.
	rs2, err := imfant.Compile([]string{"other"}, imfant.Options{TraceCapacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	reg.Swap(rs2)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?n=16", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /tracez: %d", rec.Code)
	}
	var out struct {
		Version uint64 `json:"ruleset_version"`
		Events  []struct {
			Kind   string   `json:"kind"`
			Value  int64    `json:"value"`
			Time   string   `json:"time"`
			Causes []string `json:"causes"`
		} `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("tracez not JSON: %v\n%s", err, rec.Body.String())
	}
	if out.Version != 2 {
		t.Errorf("tracez version = %d, want 2", out.Version)
	}
	sawSwap := false
	for _, ev := range out.Events {
		if ev.Kind == "ruleset_swap" {
			sawSwap = true
			if ev.Value != 2 {
				t.Errorf("ruleset_swap value = %d, want 2", ev.Value)
			}
		}
		if ev.Time == "" {
			t.Error("event missing human timestamp")
		}
	}
	if !sawSwap {
		t.Errorf("no ruleset_swap event in new ring's tail: %+v", out.Events)
	}
}

func TestTracezTracingOff(t *testing.T) {
	reg := testRegistry(t, imfant.Options{})
	rec := httptest.NewRecorder()
	Handler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/tracez", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /tracez: %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "tracing off") {
		t.Errorf("tracez without tracing: %s", rec.Body.String())
	}
}

func TestCauseBits(t *testing.T) {
	cases := []struct {
		mask int64
		want string
	}{
		{1, "timeout"}, {2, "shed"}, {4, "canceled"}, {8, "worker_panic"},
		{0, "unknown"},
		{5, "timeout,canceled"},
	}
	for _, c := range cases {
		if got := strings.Join(causeBits(c.mask), ","); got != c.want {
			t.Errorf("causeBits(%d) = %q, want %q", c.mask, got, c.want)
		}
	}
}

func TestIndexPage(t *testing.T) {
	reg := testRegistry(t, imfant.Options{})
	h := Handler(reg)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	for _, path := range []string{"/metrics", "/statusz", "/tracez"} {
		if !strings.Contains(rec.Body.String(), path) {
			t.Errorf("index page missing %s", path)
		}
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Errorf("GET /nope = %d, want 404", rec.Code)
	}
}

// TestMetricsUnderConcurrentScrapes hammers /metrics while scans run — the
// exposition path must be race-clean against live counters.
func TestMetricsUnderConcurrentScrapes(t *testing.T) {
	reg := testRegistry(t, imfant.Options{Latency: true, TraceCapacity: 64})
	h := Handler(reg)
	done := make(chan struct{})
	go func() {
		defer close(done)
		in := []byte(strings.Repeat("needle9 abbc xyz ", 32))
		for i := 0; i < 200; i++ {
			reg.FindAll(in)
		}
	}()
	for i := 0; i < 50; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if _, err := iobs.Parse(bytes.NewReader(rec.Body.Bytes())); err != nil {
			t.Fatalf("scrape %d invalid: %v", i, err)
		}
	}
	<-done
}
