// Package obs is the operational observability surface of the matching
// engine: an http.Handler exposing a hot-swappable Registry's current
// ruleset as Prometheus/OpenMetrics text (/metrics), a human-readable
// status page (/statusz), and the trace-ring tail (/tracez). It has no
// dependencies beyond the standard library.
//
// Mount it on any mux:
//
//	reg, _ := imfant.NewRegistry(patterns, imfant.Options{Latency: true})
//	http.ListenAndServe(":9090", obs.Handler(reg))
//
// All three endpoints resolve the Registry's current version per request,
// so a hot swap is reflected by the very next scrape.
package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	imfant "repro"
	iobs "repro/internal/obs"
	"repro/internal/telemetry"
)

// ContentType is the content type of the /metrics response — the
// OpenMetrics text media type, which Prometheus negotiates and parses.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Handler returns the admin surface for reg: GET /metrics, GET /statusz,
// GET /tracez (?n= tail length, default 64), and an index at /. Safe for
// concurrent use with scans and hot swaps.
func Handler(reg *imfant.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		serveMetrics(w, reg)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		serveStatusz(w, reg)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		serveTracez(w, r, reg)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "imfant admin surface")
		fmt.Fprintln(w, "  /metrics  OpenMetrics exposition")
		fmt.Fprintln(w, "  /statusz  ruleset + runtime status")
		fmt.Fprintln(w, "  /tracez   trace-ring tail (?n=64)")
	})
	return mux
}

// collectorOf reaches the raw collector behind a ruleset's expvar surface;
// the type assertion is the package's one coupling to the internal layout.
func collectorOf(rs *imfant.Ruleset) *telemetry.Collector {
	c, _ := rs.StatsVar().(*telemetry.Collector)
	return c
}

// serveMetrics renders the current version's counters plus the registry's
// own gauges.
func serveMetrics(w http.ResponseWriter, reg *imfant.Registry) {
	rs := reg.Current()
	c := collectorOf(rs)
	if c == nil {
		http.Error(w, "telemetry collector unavailable", http.StatusInternalServerError)
		return
	}
	fams := iobs.StatsFamilies(c.Snapshot(), c.Latency())
	fams = append(fams,
		iobs.GaugeFamily("imfant_ruleset_version",
			"Sequence number of the current ruleset version.", float64(reg.Version())),
		iobs.GaugeFamily("imfant_ruleset_draining",
			"Superseded ruleset versions still pinned by in-flight traffic.", float64(reg.Draining())),
		iobs.GaugeFamily("imfant_ruleset_rules",
			"Rules compiled into the current version.", float64(rs.NumRules())),
		iobs.GaugeFamily("imfant_ruleset_automata",
			"Merged automata in the current version.", float64(rs.NumAutomata())),
		iobs.GaugeFamily("imfant_ruleset_states",
			"Total MFSA states in the current version.", float64(rs.States())),
	)
	w.Header().Set("Content-Type", ContentType)
	_ = iobs.Write(w, fams)
}

// serveStatusz renders a plain-text status page: version identity,
// per-strategy group assignment, degradation-ladder counters, and
// prefilter/tracker state.
func serveStatusz(w http.ResponseWriter, reg *imfant.Registry) {
	rs := reg.Current()
	s := rs.Stats()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ruleset version: %d (draining: %d old)\n", reg.Version(), reg.Draining())
	fmt.Fprintf(w, "rules: %d  automata: %d  states: %d\n",
		rs.NumRules(), rs.NumAutomata(), rs.States())

	fmt.Fprintf(w, "\nstrategy assignment:\n")
	counts := map[string]int{}
	for _, st := range rs.Strategies() {
		counts[st.String()]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "  %-10s %d groups\n", n, counts[n])
	}
	if st := s.Strategy; st != nil {
		fmt.Fprintf(w, "  planned: %v  sweeps_disabled: %d  sweep_probes: %d  groups_ungated: %d\n",
			st.Planned, st.SweepsDisabled, st.SweepProbes, st.GroupsUngated)
	}

	fmt.Fprintf(w, "\nprefilter: active=%v", rs.PrefilterActive())
	if p := s.Prefilter; p != nil {
		fmt.Fprintf(w, "  filterable_rules=%d  factors=%d  sweeps=%d  groups_skipped=%d  bytes_saved=%d",
			p.FilterableRules, p.Factors, p.Sweeps, p.GroupsSkipped, p.BytesSaved)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "\ntraffic: scans=%d  bytes=%d  matches=%d\n", s.Scans, s.BytesScanned, s.Matches)
	if d := s.Degraded; d != nil {
		fmt.Fprintf(w, "degraded: timeouts=%d  shed=%d  worker_panics=%d  thrash_fallbacks=%d  cache_grows=%d  pinned_scans=%d\n",
			d.ScanTimeouts, d.Shed, d.WorkerPanics, d.ThrashFallbacks, d.CacheGrows, d.PinnedScans)
	}
	if l := s.Lazy; l != nil {
		fmt.Fprintf(w, "lazy-dfa: automata=%d  cached_states=%d/%d  hit_rate=%.4f  flushes=%d  fallbacks=%d\n",
			l.Automata, l.CachedStates, int64(l.MaxStates)*int64(l.Automata), l.HitRate(), l.Flushes, l.Fallbacks)
	}
	if lat := s.Latency; lat != nil {
		fmt.Fprintf(w, "\nstage latency (ns):\n")
		fmt.Fprintf(w, "  %-18s %10s %10s %10s %10s %10s\n", "stage", "count", "p50", "p90", "p99", "max")
		for _, st := range lat.Stages {
			fmt.Fprintf(w, "  %-18s %10d %10d %10d %10d %10d\n",
				st.Stage, st.Count, st.P50, st.P90, st.P99, st.Max)
		}
	}
}

// causeBits decodes the scan_error Value bitmask (see TraceEvent.Value).
func causeBits(mask int64) []string {
	var out []string
	for _, c := range []struct {
		bit  int64
		name string
	}{{1, "timeout"}, {2, "shed"}, {4, "canceled"}, {8, "worker_panic"}} {
		if mask&c.bit != 0 {
			out = append(out, c.name)
		}
	}
	if len(out) == 0 {
		return []string{"unknown"}
	}
	return out
}

// tracezEvent is one /tracez row: the public TraceEvent plus a decoded
// cause chain for scan_error events and a human timestamp.
type tracezEvent struct {
	imfant.TraceEvent
	Time   string   `json:"time"`
	Causes []string `json:"causes,omitempty"`
}

// serveTracez renders the trace-ring tail as JSON lines, newest last.
// ?n= bounds the tail (default 64); tracing off yields an empty tail with
// a note.
func serveTracez(w http.ResponseWriter, r *http.Request, reg *imfant.Registry) {
	rs := reg.Current()
	n := 64
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			n = v
		}
	}
	evs := rs.TraceEvents()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if evs == nil {
		fmt.Fprintln(w, `{"note":"tracing off (compile with Options.TraceCapacity)","events":[]}`)
		return
	}
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	out := struct {
		Version uint64        `json:"ruleset_version"`
		Events  []tracezEvent `json:"events"`
	}{Version: reg.Version(), Events: make([]tracezEvent, len(evs))}
	for i, ev := range evs {
		te := tracezEvent{TraceEvent: ev,
			Time: time.Unix(0, ev.Nanos).UTC().Format(time.RFC3339Nano)}
		if ev.Kind == "scan_error" {
			te.Causes = causeBits(ev.Value)
		}
		out.Events[i] = te
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}
