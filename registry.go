package imfant

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Registry is a hot-swappable container of Ruleset versions: scans always
// run against the newest compiled version, while an update replaces it with
// zero downtime — no scan is blocked, torn, or dropped during the swap.
//
// The swap protocol is read-copy-update shaped. Every compiled ruleset is
// immutable, so a version can be replaced by an atomic pointer store:
//   - Scans routed through the Registry (FindAll, Count, Scan, CountParallel
//     and their Context forms) resolve the current version per call. The
//     first scan after a swap runs on the new rules; scans already in flight
//     finish on the version they started on, with their full match set.
//   - StreamMatchers created through the Registry pin the version current at
//     creation for the life of the stream — a ruleset change cannot alter
//     match semantics mid-stream — and release it at Close.
//   - A superseded version stays fully functional until its last pinned scan
//     or stream lets go; DrainOld waits for that, giving update pipelines a
//     "safe to tear down / report success" barrier.
//
// Update compiles outside the swap lock, so matching traffic never stalls
// behind compilation; a compile error leaves the current version untouched
// (crash-safe reload semantics). All methods are safe for concurrent use.
type Registry struct {
	mu  sync.Mutex // guards refs, old; serializes swap vs. pin
	cur atomic.Pointer[registryVersion]
	old []*registryVersion // superseded versions still pinned by traffic

	upMu sync.Mutex // serializes Update compilations, keeping version order
}

// registryVersion is one compiled generation. refs counts the holders that
// keep it alive: 1 for the registry's current pointer plus one per pinned
// scan or open stream; drained closes when the count reaches zero.
type registryVersion struct {
	rs      *Ruleset
	seq     uint64
	refs    int // guarded by Registry.mu
	drained chan struct{}
}

// NewRegistry compiles patterns into version 1 of a new registry.
func NewRegistry(patterns []string, opts Options) (*Registry, error) {
	rs, err := Compile(patterns, opts)
	if err != nil {
		return nil, err
	}
	return NewRegistryFrom(rs), nil
}

// NewRegistryFrom wraps an already compiled ruleset as version 1. The
// caller must not retain other references that mutate scan routing; the
// ruleset itself stays usable directly (it is immutable).
func NewRegistryFrom(rs *Ruleset) *Registry {
	r := &Registry{}
	r.cur.Store(&registryVersion{rs: rs, seq: 1, refs: 1, drained: make(chan struct{})})
	return r
}

// Current returns the newest ruleset version. The load is a single atomic
// pointer read — the scan hot path pays no lock. The returned ruleset is
// immutable and remains valid even after later swaps.
func (r *Registry) Current() *Ruleset { return r.cur.Load().rs }

// Version returns the monotonically increasing sequence number of the
// current version, starting at 1.
func (r *Registry) Version() uint64 { return r.cur.Load().seq }

// pin takes a reference on the current version, preventing its drain until
// the matching release. Pinning is serialized with Swap so a version can
// never be revived after its drained channel closed.
func (r *Registry) pin() *registryVersion {
	r.mu.Lock()
	v := r.cur.Load()
	v.refs++
	r.mu.Unlock()
	return v
}

// release drops one reference; the last one out closes drained and retires
// the version from the superseded list.
func (r *Registry) release(v *registryVersion) {
	r.mu.Lock()
	v.refs--
	if v.refs == 0 {
		close(v.drained)
		for i, o := range r.old {
			if o == v {
				r.old = append(r.old[:i], r.old[i+1:]...)
				break
			}
		}
	}
	r.mu.Unlock()
}

// Swap atomically installs rs as the new current version and returns the
// ruleset it replaced. The old version keeps serving its pinned scans and
// open streams until they finish (see DrainOld); new scans observe rs
// immediately.
func (r *Registry) Swap(rs *Ruleset) *Ruleset {
	r.mu.Lock()
	old := r.cur.Load()
	next := &registryVersion{rs: rs, seq: old.seq + 1, refs: 1, drained: make(chan struct{})}
	r.cur.Store(next)
	old.refs-- // release the current-pointer hold
	if old.refs == 0 {
		close(old.drained)
	} else {
		r.old = append(r.old, old)
	}
	r.mu.Unlock()
	// The swap is observable from both sides of the cutover: the outgoing
	// ruleset's trace tail shows it was superseded, the incoming one shows
	// when it took over. Value carries the sequence that became current.
	traceSwap(old.rs, next.seq)
	if rs != old.rs {
		traceSwap(rs, next.seq)
	}
	return old.rs
}

// traceSwap records a ruleset_swap event into rs's trace ring, when it has
// one.
func traceSwap(rs *Ruleset, seq uint64) {
	if rs == nil || rs.trace == nil {
		return
	}
	rs.trace.Record(telemetry.Event{Kind: telemetry.EventRulesetSwap,
		Automaton: -1, Rule: -1, Offset: -1, Value: int64(seq)})
}

// Update compiles patterns and, on success, swaps the result in as the new
// current version, returning it. Compilation runs outside the swap lock, so
// matching traffic proceeds at full speed on the old version throughout; a
// compile failure changes nothing — the previous version keeps serving.
// Concurrent Updates are serialized in call order.
func (r *Registry) Update(patterns []string, opts Options) (*Ruleset, error) {
	r.upMu.Lock()
	defer r.upMu.Unlock()
	rs, err := Compile(patterns, opts)
	if err != nil {
		return nil, err
	}
	r.Swap(rs)
	return rs, nil
}

// UpdateBackground runs Update on its own goroutine and returns a buffered
// channel that receives the result exactly once — the zero-downtime reload
// shape: request the recompile, keep scanning, observe the swap (or the
// compile error) whenever convenient.
func (r *Registry) UpdateBackground(patterns []string, opts Options) <-chan error {
	done := make(chan error, 1)
	go func() {
		_, err := r.Update(patterns, opts)
		done <- err
	}()
	return done
}

// DrainOld blocks until every version superseded before the call has been
// released by all of its pinned scans and open streams, or until ctx is
// done. A nil error means no scan or stream is still running on old rules —
// the barrier for tearing down resources tied to them.
func (r *Registry) DrainOld(ctx context.Context) error {
	r.mu.Lock()
	waits := make([]chan struct{}, len(r.old))
	for i, v := range r.old {
		waits[i] = v.drained
	}
	r.mu.Unlock()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for _, ch := range waits {
		select {
		case <-ch:
		case <-done:
			return ctx.Err()
		}
	}
	// Drain completed: every superseded version's last pin let go. Recorded
	// into the CURRENT version's ring — the superseded rings are about to be
	// torn down with their rulesets.
	if cur := r.cur.Load().rs; cur != nil && cur.trace != nil {
		cur.trace.Record(telemetry.Event{Kind: telemetry.EventRulesetDrain,
			Automaton: -1, Rule: -1, Offset: -1, Value: int64(len(waits))})
	}
	return nil
}

// Draining returns the number of superseded versions still pinned by
// in-flight scans or open streams — the admin surface's "how much old-rule
// traffic is left" gauge; 0 once every old version has drained.
func (r *Registry) Draining() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.old)
}

// NewStreamMatcher returns a matcher pinned to the current version: the
// whole stream — across every Write, however long it lives — matches
// against the rules current at creation, and later swaps cannot change its
// semantics mid-stream. Close releases the pin (and with it, DrainOld).
func (r *Registry) NewStreamMatcher(onMatch func(Match)) *StreamMatcher {
	return r.NewStreamMatcherContext(context.Background(), onMatch)
}

// NewStreamMatcherContext is NewStreamMatcher under a context (see
// Ruleset.NewStreamMatcherContext).
func (r *Registry) NewStreamMatcherContext(ctx context.Context, onMatch func(Match)) *StreamMatcher {
	v := r.pin()
	sm := v.rs.NewStreamMatcherContext(ctx, onMatch)
	sm.onClose = func() { r.release(v) }
	return sm
}

// FindAll scans input against the current version. The version is pinned
// for the duration of the call, so a concurrent swap neither tears the scan
// nor hides it from DrainOld.
func (r *Registry) FindAll(input []byte) []Match {
	out, _ := r.FindAllContext(context.Background(), input)
	return out
}

// FindAllContext is FindAll under a context (see Ruleset.FindAllContext).
func (r *Registry) FindAllContext(ctx context.Context, input []byte) ([]Match, error) {
	v := r.pin()
	defer r.release(v)
	return v.rs.FindAllContext(ctx, input)
}

// Scan streams every match in input to fn against the current version,
// pinned for the duration of the call.
func (r *Registry) Scan(input []byte, fn func(Match)) {
	v := r.pin()
	defer r.release(v)
	v.rs.Scan(input, fn)
}

// ScanContext is Scan under a context (see Ruleset.ScanContext).
func (r *Registry) ScanContext(ctx context.Context, input []byte, fn func(Match)) error {
	v := r.pin()
	defer r.release(v)
	return v.rs.ScanContext(ctx, input, fn)
}

// Count returns the total number of match events in input against the
// current version, pinned for the duration of the call.
func (r *Registry) Count(input []byte) int64 {
	v := r.pin()
	defer r.release(v)
	return v.rs.Count(input)
}

// CountParallel is Ruleset.CountParallel against the current version,
// pinned for the duration of the call.
func (r *Registry) CountParallel(input []byte, threads int) (int64, error) {
	return r.CountParallelContext(context.Background(), input, threads)
}

// CountParallelContext is CountParallel under a context; the current
// version's overload shedding and scan timeout apply unchanged.
func (r *Registry) CountParallelContext(ctx context.Context, input []byte, threads int) (int64, error) {
	v := r.pin()
	defer r.release(v)
	return v.rs.CountParallelContext(ctx, input, threads)
}
