package imfant

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestRulesetStatsCounts checks the ruleset-wide fold: per-rule hits agree
// with CountPerRule, and bytes/scans scale with the automaton count.
func TestRulesetStatsCounts(t *testing.T) {
	patterns := []string{"ab", "b+c", "cd"}
	rs := MustCompile(patterns, Options{MergeFactor: 2}) // 2 automata
	input := []byte("abxbbcxcdab")

	sc := rs.NewScanner()
	perRule := sc.CountPerRule(input)

	st := rs.Stats()
	if !reflect.DeepEqual(st.RuleHits, perRule) {
		t.Fatalf("Stats.RuleHits %v, CountPerRule %v", st.RuleHits, perRule)
	}
	if want := int64(rs.NumAutomata()); st.Scans != want {
		t.Fatalf("Scans = %d, want %d", st.Scans, want)
	}
	if want := int64(len(input) * rs.NumAutomata()); st.BytesScanned != want {
		t.Fatalf("BytesScanned = %d, want %d", st.BytesScanned, want)
	}
	var hits int64
	for _, n := range perRule {
		hits += n
	}
	if st.Matches != hits {
		t.Fatalf("Matches = %d, want %d", st.Matches, hits)
	}
	if st.Lazy != nil {
		t.Fatal("iMFAnt ruleset has a lazy section")
	}

	// Scanner-scope stats agree with the ruleset-scope fold (this scanner
	// did all the work).
	if ss := sc.Stats(); !reflect.DeepEqual(ss, st) {
		t.Fatalf("Scanner.Stats %+v != Ruleset.Stats %+v", ss, st)
	}

	// CountParallel folds into the same collector.
	if _, err := rs.CountParallel(input, 2); err != nil {
		t.Fatal(err)
	}
	after := rs.Stats()
	if after.Scans != 2*st.Scans || after.Matches != 2*st.Matches {
		t.Fatalf("CountParallel not folded: %+v after %+v", after, st)
	}
}

// TestLazyStats checks the lazy-DFA section: cache counters flow from the
// runners to every scope, and the warm-scan hit rate approaches 1.
func TestLazyStats(t *testing.T) {
	rs := MustCompile([]string{"abc", "b+c"}, Options{Engine: EngineLazyDFA, KeepOnMatch: true})
	input := []byte("abcxbbcabcxxabc")

	sc := rs.NewScanner()
	for i := 0; i < 3; i++ {
		sc.Count(input)
	}
	st := sc.Stats()
	if st.Lazy == nil {
		t.Fatal("lazy section missing from Scanner.Stats")
	}
	if st.Scans != 3 || st.BytesScanned != int64(3*len(input)) {
		t.Fatalf("scanner stats %+v", st)
	}
	l := st.Lazy
	if l.Hits+l.Misses != st.BytesScanned {
		t.Fatalf("hits %d + misses %d != bytes %d", l.Hits, l.Misses, st.BytesScanned)
	}
	if l.Misses == 0 || l.HitRate() < 0.5 {
		t.Fatalf("implausible cache behaviour: %+v", l)
	}
	if l.CachedStates == 0 || l.MaxStates == 0 || l.ByteClasses == 0 {
		t.Fatalf("static lazy config missing: %+v", l)
	}

	// The ruleset-wide fold saw the same scans.
	rst := rs.Stats()
	if rst.Lazy == nil || rst.Lazy.Hits != l.Hits || rst.Lazy.Misses != l.Misses {
		t.Fatalf("ruleset lazy fold %+v, scanner %+v", rst.Lazy, l)
	}
}

// TestStreamMatcherStats checks the stream scope: live reads during the
// stream, and the Close-time fold into the ruleset collector.
func TestStreamMatcherStats(t *testing.T) {
	rs := MustCompile([]string{"ab", "b$"}, Options{})
	sm := rs.NewStreamMatcher(nil)
	sm.Write([]byte("xxabxx"))

	live := sm.Stats()
	if live.Scans != 0 {
		t.Fatalf("Scans before Close = %d", live.Scans)
	}
	// 6 bytes written, but the most recent one is held back until the
	// stream end is known — 5 have been matched against so far.
	if live.BytesScanned != 5 || live.Matches != 1 {
		t.Fatalf("live stream stats %+v", live)
	}

	before := rs.Stats()
	sm.Write([]byte("ab"))
	sm.Close()
	final := sm.Stats()
	if final.Scans != 1 || final.BytesScanned != 8 || final.Matches != 3 {
		t.Fatalf("final stream stats %+v", final)
	}
	if want := []int64{2, 1}; !reflect.DeepEqual(final.RuleHits, want) {
		t.Fatalf("stream rule hits %v, want %v", final.RuleHits, want)
	}
	after := rs.Stats()
	if after.Scans != before.Scans+1 || after.Matches != before.Matches+3 {
		t.Fatalf("Close did not fold into ruleset: %+v then %+v", before, after)
	}
}

// TestStatsVarJSON checks the expvar export: the Var's String output is
// valid JSON carrying the same numbers as Stats.
func TestStatsVarJSON(t *testing.T) {
	rs := MustCompile([]string{"abc"}, Options{Engine: EngineLazyDFA, KeepOnMatch: true})
	rs.Count([]byte("xxabcxxabc"))

	v := rs.StatsVar()
	var decoded struct {
		Scans        int64   `json:"scans"`
		BytesScanned int64   `json:"bytes_scanned"`
		Matches      int64   `json:"matches"`
		RuleHits     []int64 `json:"rule_hits"`
		Lazy         *struct {
			Hits      int64 `json:"hits"`
			Misses    int64 `json:"misses"`
			MaxStates int   `json:"max_states"`
		} `json:"lazy"`
	}
	if err := json.Unmarshal([]byte(v.String()), &decoded); err != nil {
		t.Fatalf("StatsVar JSON: %v", err)
	}
	st := rs.Stats()
	if decoded.Scans != st.Scans || decoded.BytesScanned != st.BytesScanned ||
		decoded.Matches != st.Matches || !reflect.DeepEqual(decoded.RuleHits, st.RuleHits) {
		t.Fatalf("expvar %+v disagrees with Stats %+v", decoded, st)
	}
	if decoded.Lazy == nil || decoded.Lazy.Hits != st.Lazy.Hits || decoded.Lazy.MaxStates != st.Lazy.MaxStates {
		t.Fatalf("expvar lazy %+v, Stats lazy %+v", decoded.Lazy, st.Lazy)
	}
}

// jsonKeys returns the key set of a JSON object (one level).
func jsonKeys(t *testing.T, raw json.RawMessage) map[string]bool {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("not a JSON object: %v in %s", err, raw)
	}
	keys := make(map[string]bool, len(m))
	for k := range m {
		keys[k] = true
	}
	return keys
}

// TestStatsVarSchemaSync is the schema-drift guard for the expvar surface:
// StatsVar's JSON must carry the strategy and degraded sections, and its
// key sets — top level and within those sections — must equal those of the
// public Stats marshalling. A field renamed on one side but not the other
// fails here, before any dashboard notices.
func TestStatsVarSchemaSync(t *testing.T) {
	rs := MustCompile([]string{"abc", "^hdr", "lit(eral)?x"}, Options{
		Latency: true, Prefilter: PrefilterOn,
	})
	rs.Count([]byte("xxabcxx literalx hdr"))
	if _, err := rs.CountParallel([]byte("abc abc literx"), 2); err != nil {
		t.Fatal(err)
	}

	var fromVar map[string]json.RawMessage
	if err := json.Unmarshal([]byte(rs.StatsVar().String()), &fromVar); err != nil {
		t.Fatalf("StatsVar JSON: %v", err)
	}
	pub, err := json.Marshal(rs.Stats())
	if err != nil {
		t.Fatal(err)
	}
	var fromStats map[string]json.RawMessage
	if err := json.Unmarshal(pub, &fromStats); err != nil {
		t.Fatal(err)
	}

	for _, section := range []string{"strategy", "degraded"} {
		if _, ok := fromVar[section]; !ok {
			t.Errorf("StatsVar JSON missing %q section", section)
		}
	}
	for key := range fromVar {
		if _, ok := fromStats[key]; !ok {
			t.Errorf("StatsVar key %q absent from Stats() JSON", key)
		}
	}
	for key := range fromStats {
		if _, ok := fromVar[key]; !ok {
			t.Errorf("Stats() key %q absent from StatsVar JSON", key)
		}
	}
	for _, section := range []string{"strategy", "degraded", "latency"} {
		v, okV := fromVar[section]
		s, okS := fromStats[section]
		if !okV || !okS {
			continue // absence parity already checked above
		}
		vk, sk := jsonKeys(t, v), jsonKeys(t, s)
		if !reflect.DeepEqual(vk, sk) {
			t.Errorf("section %q keys drifted: expvar %v vs Stats %v", section, vk, sk)
		}
	}
}
