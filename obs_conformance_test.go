package imfant

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// obsTestPatterns mix every strategy class so each stage timer fires:
// literals (AC), anchors (anchored), small regexes (DFA), and an
// engine-bound rule that stays on the default engine.
var obsTestPatterns = []string{
	"/etc/passwd", "cmd\\.exe", "<script>",
	"^GET /", "/done$",
	"id=[0-9]+ or ", "%2e%2e[/\\\\]",
	"x[0-9]{200}y",
}

// obsTraffic salts HTTP-ish filler with pattern fragments.
func obsTraffic(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	frags := []string{
		"Host: example.com\r\n", "User-Agent: Mozilla\r\n",
		"GET /index.html HTTP/1.1\r\n", "/etc/passwd", "cmd.exe",
		"<script>alert(1)</script>", "id=7 or 1=1 ", "%2e%2e/etc",
	}
	var out []byte
	for len(out) < n {
		out = append(out, frags[rng.Intn(len(frags))]...)
	}
	return out[:n]
}

// TestObsConformance checks the observability plane's prime directive:
// latency attribution and tracing on versus all-off produce byte-identical
// match results for FindAll, CountParallel, and randomly chunked streams,
// across engines × prefilter × accel.
func TestObsConformance(t *testing.T) {
	input := obsTraffic(96<<10, 41)
	rng := rand.New(rand.NewSource(43))
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"auto", Options{MergeFactor: 3}},
		{"auto-pref", Options{MergeFactor: 3, Prefilter: PrefilterOn}},
		{"imfant", Options{MergeFactor: 3, Engine: EngineIMFAnt, Prefilter: PrefilterOff}},
		{"imfant-accel", Options{MergeFactor: 3, Engine: EngineIMFAnt, Accel: AccelOn}},
		{"lazy", Options{MergeFactor: 3, Engine: EngineLazyDFA, KeepOnMatch: true}},
		{"lazy-accel-pref", Options{MergeFactor: 3, Engine: EngineLazyDFA, Accel: AccelOn, Prefilter: PrefilterOn}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			onOpts, offOpts := tc.opts, tc.opts
			onOpts.Latency = true
			onOpts.TraceCapacity = 512
			on := MustCompile(obsTestPatterns, onOpts)
			off := MustCompile(obsTestPatterns, offOpts)

			want := off.FindAll(input)
			got := on.FindAll(input)
			sortMatches(want)
			sortMatches(got)
			if len(want) == 0 {
				t.Fatal("test traffic produced no matches; conformance vacuous")
			}
			if len(got) != len(want) {
				t.Fatalf("FindAll: %d matches instrumented, %d off", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("FindAll match %d differs: %+v vs %+v", i, got[i], want[i])
				}
			}

			nOn, err := on.CountParallel(input, 4)
			if err != nil {
				t.Fatal(err)
			}
			nOff, err := off.CountParallel(input, 4)
			if err != nil {
				t.Fatal(err)
			}
			if nOn != nOff {
				t.Fatalf("CountParallel: %d instrumented, %d off", nOn, nOff)
			}

			var streamed []Match
			sm := on.NewStreamMatcher(func(m Match) { streamed = append(streamed, m) })
			for pos := 0; pos < len(input); {
				end := pos + 1 + rng.Intn(4096)
				if end > len(input) {
					end = len(input)
				}
				if _, err := sm.Write(input[pos:end]); err != nil {
					t.Fatal(err)
				}
				pos = end
			}
			if err := sm.Close(); err != nil {
				t.Fatal(err)
			}
			sortMatches(streamed)
			if len(streamed) != len(want) {
				t.Fatalf("stream: %d matches instrumented, %d block off", len(streamed), len(want))
			}
			for i := range streamed {
				if streamed[i] != want[i] {
					t.Fatalf("stream match %d differs: %+v vs %+v", i, streamed[i], want[i])
				}
			}

			// The instrumented ruleset must actually have recorded latency:
			// at least the whole-scan stage, with block + parallel + stream
			// traffic all folded in.
			lat := on.Stats().Latency
			if lat == nil || len(lat.Stages) == 0 {
				t.Fatal("latency on: Stats().Latency empty after traffic")
			}
			var scanCount int64
			for _, st := range lat.Stages {
				if st.Stage == "scan" {
					scanCount = st.Count
				}
			}
			if scanCount == 0 {
				t.Fatalf("no scan-stage observations: %+v", lat.Stages)
			}
			if off.Stats().Latency != nil {
				t.Fatal("latency off: Stats().Latency must be nil")
			}
		})
	}
}

// TestLatencyStageCoverage pins which stages fire on each path: prefilter
// and per-strategy dispatch on block scans, parallel and strategy stages on
// CountParallel, stream write/flush on streams.
func TestLatencyStageCoverage(t *testing.T) {
	rs := MustCompile(obsTestPatterns, Options{
		MergeFactor: 3, Prefilter: PrefilterOn, Latency: true,
	})
	input := obsTraffic(32<<10, 47)
	rs.FindAll(input)
	if _, err := rs.CountParallel(input, 2); err != nil {
		t.Fatal(err)
	}
	sm := rs.NewStreamMatcher(nil)
	if _, err := sm.Write(input[:8<<10]); err != nil {
		t.Fatal(err)
	}
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}

	lat := rs.Stats().Latency
	if lat == nil {
		t.Fatal("no latency section")
	}
	got := map[string]int64{}
	for _, st := range lat.Stages {
		got[st.Stage] = st.Count
	}
	for _, stage := range []string{"scan", "parallel", "stream_write", "stream_flush"} {
		if got[stage] == 0 {
			t.Errorf("stage %q never recorded; got %v", stage, got)
		}
	}
	// The mixed ruleset has AC, anchored, DFA and default groups — at
	// least one per-strategy dispatch stage must have fired.
	var strategyObs int64
	for stage, n := range got {
		if len(stage) > 9 && stage[:9] == "strategy_" {
			strategyObs += n
		}
	}
	if strategyObs == 0 {
		t.Errorf("no per-strategy dispatch stage recorded; got %v", got)
	}
}

// TestConcurrentSetTraceSinkPublic flips the public trace sink while scans
// run: race-clean under -race, no event delivered to any sink twice, and
// events that arrive carry monotonically growing sequence numbers per
// goroutine's observation window.
func TestConcurrentSetTraceSinkPublic(t *testing.T) {
	rs := MustCompile([]string{"abc", "xy+z"}, Options{TraceCapacity: 256})
	input := obsTraffic(4<<10, 53)

	var delivered sync.Map // seq -> *int64 delivery count
	count := func(ev TraceEvent) {
		v, _ := delivered.LoadOrStore(ev.Seq, new(int64))
		atomic.AddInt64(v.(*int64), 1)
	}

	var scanners, flipper sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		scanners.Add(1)
		go func() {
			defer scanners.Done()
			for i := 0; i < 200; i++ {
				rs.FindAll(input)
			}
		}()
	}
	flipper.Add(1)
	go func() {
		defer flipper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%3 == 2 {
				rs.SetTraceSink(nil)
			} else {
				rs.SetTraceSink(count)
			}
		}
	}()
	scanners.Wait()
	close(stop)
	flipper.Wait()
	rs.SetTraceSink(nil)

	dups := 0
	delivered.Range(func(_, v any) bool {
		if atomic.LoadInt64(v.(*int64)) != 1 {
			dups++
		}
		return true
	})
	if dups != 0 {
		t.Fatalf("%d events delivered to a sink more than once", dups)
	}
}
