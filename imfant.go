// Package imfant is a multi-regular-expression matching library built on
// the Multi-RE Finite State Automaton (MFSA) model of "One Automaton to
// Rule Them All: Beyond Multiple Regular Expressions Execution" (CGO 2024).
//
// A Ruleset compiles a set of POSIX ERE patterns through the paper's
// multi-level framework — lexical/syntactic analysis, Thompson construction,
// single-FSA optimization (ε-removal, loop expansion, multiplicity
// simplification), and merging of morphologically identical sub-paths into
// MFSAs — and executes them with the iMFAnt engine, which tracks the
// activation function so each merged RE's matches stay exact.
//
// Quick start:
//
//	rs, err := imfant.Compile([]string{"GET /admin", "cmd\\.exe"}, imfant.Options{})
//	if err != nil { ... }
//	for _, m := range rs.FindAll(payload) {
//		fmt.Printf("rule %d (%s) matched ending at %d\n", m.Rule, m.Pattern, m.End)
//	}
package imfant

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/ahocorasick"
	"repro/internal/anml"
	"repro/internal/dfa"
	"repro/internal/engine"
	"repro/internal/faultpoint"
	"repro/internal/hist"
	"repro/internal/lazydfa"
	"repro/internal/metrics"
	"repro/internal/mfsa"
	"repro/internal/nfa"
	"repro/internal/pipeline"
	"repro/internal/segment"
	"repro/internal/strategy"
	"repro/internal/telemetry"
)

// EngineMode selects the execution engine used by scans.
type EngineMode int

const (
	// EngineAuto picks the lazy-DFA engine whenever its semantics apply
	// (KeepOnMatch, whose keep semantics make the traversal cacheable)
	// and the iMFAnt engine otherwise.
	EngineAuto EngineMode = iota
	// EngineIMFAnt forces the paper's NFA-style iMFAnt engine.
	EngineIMFAnt
	// EngineLazyDFA forces the lazy-DFA engine: on-the-fly
	// determinization of the iMFAnt state vector with a bounded,
	// byte-class-compressed transition cache. Configurations it cannot
	// cache (KeepOnMatch == false, the paper's Eq. 5 pop) and inputs
	// that thrash the cache fall back transparently to iMFAnt.
	EngineLazyDFA
)

// AccelMode selects byte-skipping acceleration: memchr-class skip kernels
// that let the engines jump over provably irrelevant input bytes instead of
// stepping the automaton once per byte. The lazy-DFA engine classifies every
// cached state at construction and jumps while parked in states with at most
// four live outgoing bytes; the iMFAnt engine skips to the next possible
// start byte while its activation vector is empty; the prefilter's
// Aho–Corasick sweep skips while parked at its root. All three are exact:
// match results are byte-identical in every mode.
type AccelMode int

const (
	// AccelAuto (the zero value) enables acceleration. It is the default
	// because the skips are exact and profitable whenever they engage;
	// states and programs that do not qualify run the ordinary per-byte
	// loops unchanged.
	AccelAuto AccelMode = iota
	// AccelOn forces acceleration (currently identical to AccelAuto).
	AccelOn
	// AccelOff disables every byte-skipping path — the measurement
	// baseline, and an escape hatch.
	AccelOff
)

// Options configures compilation and matching.
type Options struct {
	// MergeFactor is the paper's M: how many REs are merged into each
	// MFSA. The ruleset is split into ⌈N/M⌉ sequential groups. Zero (or
	// a value ≥ the ruleset size) merges everything into one MFSA
	// ("M = all"), which maximizes compression; 1 disables merging and
	// degenerates to plain iNFAnt over per-RE NFAs.
	MergeFactor int
	// KeepOnMatch disables the paper's Eq. 5 pop: a rule stays active
	// after matching, so every longer match of the same path is also
	// reported. Off by default (paper semantics).
	KeepOnMatch bool
	// Engine selects the execution engine. The zero value (EngineAuto)
	// uses the lazy-DFA engine when KeepOnMatch is set and iMFAnt
	// otherwise. Both engines report each (rule, end offset) pair exactly
	// once, so their match-event streams are identical.
	Engine EngineMode
	// Prefilter selects the literal-factor prefilter: a compile-time
	// Hyperscan-style decomposition that extracts a required literal factor
	// from each rule where one exists, and a scan-time Aho–Corasick sweep
	// that skips whole MFSA groups whose rules cannot match the input. The
	// zero value (PrefilterAuto) engages it only when at least one group is
	// fully filterable; PrefilterOn additionally biases grouping so
	// filterable rules share MFSAs. Results are identical in every mode.
	Prefilter PrefilterMode
	// MinFactorLen is the shortest literal factor worth prefiltering on;
	// 0 selects the default (3). Shorter factors hit more often and gate
	// less; raising the threshold trades filterable-rule coverage for
	// sweep selectivity.
	MinFactorLen int
	// Accel selects byte-skipping acceleration (lazy-DFA state
	// acceleration, the iMFAnt start-byte skip, and the prefilter sweep's
	// root skip). The zero value (AccelAuto) enables it; results are
	// byte-identical in every mode. See AccelMode.
	Accel AccelMode
	// LazyDFAMaxStates caps the lazy-DFA transition cache per automaton
	// and matching context; 0 selects lazydfa.DefaultMaxStates. Smaller
	// caps bound memory at the cost of more cache flushes.
	LazyDFAMaxStates int
	// Limits is the compile-side resource budget: pattern length, nesting
	// depth, per-rule NFA states under loop expansion, and the total MFSA
	// state count. The zero value selects the documented defaults, which
	// keep compilation of hostile rulesets bounded; set a field negative
	// to disable that check.
	Limits Limits
	// Profile enables the sampling execution profiler: per-state visit
	// counts attributed to rules through the belonging sets, scan and
	// stream-chunk latency histograms, and active-set size distributions,
	// all readable via Ruleset.Profile and the Stats().Profile section.
	// Sampling happens once every ProfileStride input bytes outside the
	// per-byte hot loops; with Profile off the engines pay a single nil
	// check per chunk and Profile() returns nil.
	Profile bool
	// ProfileStride is the symbol-sampling stride of the profiler; 0
	// selects the default (64). Smaller strides sharpen the heat map at a
	// proportional sampling cost. Ignored when Profile is false.
	ProfileStride int
	// Latency enables per-stage wall-clock latency attribution: monotonic
	// timers bracket the prefilter sweep, each automaton's strategy
	// dispatch, the parallel fan-out, and stream chunk/flush work, folded
	// into allocation-free log2 histograms and surfaced as the
	// Stats().Latency section (p50/p90/p99 per stage, nanoseconds).
	// Independent of Profile; with Latency off the scan paths pay a single
	// nil check per chunk and the section is omitted.
	Latency bool
	// TraceCapacity, when positive, enables the structured trace ring:
	// the most recent TraceCapacity events (scan begin/end, matches, lazy
	// flush/fallback, stream end) are retained and readable via
	// Ruleset.TraceEvents; SetTraceSink observes every event live.
	// Tracing is independent of Profile.
	TraceCapacity int
	// ScanTimeout bounds each scan's wall-clock time; zero disables the
	// bound. The deadline is observed at the engines' ordinary
	// checkpoints (about every 4 KiB per automaton) and surfaces as the
	// typed ErrScanTimeout, which wraps context.DeadlineExceeded. For
	// StreamMatchers the budget applies per Write (and to Close's final
	// flush) rather than to the unbounded stream as a whole; an expired
	// stream fails sticky, like a context cancellation. Timed-out scans
	// count in Stats().Degraded.ScanTimeouts.
	ScanTimeout time.Duration
	// MaxConcurrentScans bounds how many CountParallel calls may execute
	// at once across the ruleset; 0 (the default) does not bound them.
	// With the bound in place, excess calls wait in a queue of at most
	// MaxQueuedScans; beyond that they are shed with the typed
	// ErrOverloaded instead of queueing unboundedly. Shed scans count in
	// Stats().Degraded.Shed.
	MaxConcurrentScans int
	// MaxQueuedScans is the bounded work queue's capacity — how many
	// CountParallel calls may block waiting for a slot when
	// MaxConcurrentScans is set. The default 0 sheds immediately
	// whenever every slot is busy (fail-fast). Ignored without
	// MaxConcurrentScans.
	MaxQueuedScans int
	// ThrashRetry selects the lazy-DFA degradation ladder: after a
	// matching context's cache thrashes, its next scan retries once with
	// the cache cap doubled, and a thrash at the grown cap pins the
	// context to the iMFAnt engine permanently — bounded backoff in
	// place of rebuild-thrash-rebuild churn. The zero value (RetryAuto)
	// enables the ladder; results are byte-identical on every rung. The
	// rungs taken are recorded in Stats().Degraded (CacheGrows,
	// PinnedScans).
	ThrashRetry RetryMode
	// Segment selects segment-parallel scanning for whole-buffer ruleset
	// scans (CountParallel, FindAll): the input is cut into contiguous
	// segments scanned concurrently, with exact boundary stitching — the
	// reported events are byte-identical to a serial scan. SegmentAuto (the
	// zero value) segments inputs of at least SegmentMinBytes; SegmentOn
	// segments every input large enough to cut; SegmentOff disables the
	// path. Scanner and StreamMatcher scans are never segmented — their
	// value is warm per-goroutine state, not intra-input parallelism.
	Segment SegmentMode
	// SegmentMinBytes is the minimum input size SegmentAuto segments; 0
	// selects DefaultSegmentMinBytes. Below it the fan-out overhead
	// (per-worker runners plus boundary stitching) outweighs the
	// parallelism.
	SegmentMinBytes int
	// SegmentWorkers is the segment count per scan; 0 selects GOMAXPROCS.
	// CountParallel's explicit threads argument, when positive, takes
	// precedence.
	SegmentWorkers int
	// SegmentMaxFrontier bounds the speculative boundary frontier, in
	// active MFSA states; 0 selects DefaultSegmentMaxFrontier. A group
	// whose boundary carry exceeds the budget still finishes the current
	// scan exactly, but is pinned to the serial path for subsequent scans
	// (counted in Stats().Segment.Fallbacks) — a group that is almost
	// always mid-match gains nothing from segmentation.
	SegmentMaxFrontier int
}

// Match is one reported match.
type Match struct {
	// Rule is the index of the pattern within the compiled ruleset.
	Rule int
	// Pattern is the rule's source text.
	Pattern string
	// End is the offset of the last byte of the match (inclusive).
	End int
}

// StageTimes reports the cost of each compilation stage (§IV, Fig. 8).
type StageTimes struct {
	FrontEnd, ASTToFSA, SingleFSAOpt, Merging, ANMLGen time.Duration
}

// Total returns the end-to-end compilation time.
func (st StageTimes) Total() time.Duration {
	return st.FrontEnd + st.ASTToFSA + st.SingleFSAOpt + st.Merging + st.ANMLGen
}

// Ruleset is a compiled, immutable set of regular expressions ready for
// matching. Create one with Compile or LoadANML. A Ruleset is safe for
// concurrent use; per-goroutine scratch state lives in Matchers.
type Ruleset struct {
	patterns  []string
	mfsas     []*mfsa.MFSA
	programs  []*engine.Program
	lazy      []*lazydfa.Matcher
	times     StageTimes
	comp      metrics.Compression
	opts      Options
	collector *telemetry.Collector
	plan      *scanPlan    // per-group execution strategies (see plan.go)
	pf        *prefilter   // literal-factor gating plan; nil when inactive
	tracker   *prefTracker // runtime sweep-effectiveness tracker; nil when ungated
	sched     *scanGate    // overload shedding for parallel scans; nil when unbounded
	// prefEnabled (with the rule/factor config counts) drives the Prefilter
	// stats section: it is on whenever literal gating is happening — via the
	// factor sweep (rs.pf) or via AC-routed groups, whose strategy scan IS
	// their factor sweep.
	prefEnabled bool
	prefRules   int
	prefFactors int
	// faults, when non-nil, arms the fault-injection sites of every scan
	// and stream created from this ruleset — the chaos-testing substrate
	// (see internal/faultpoint). Always nil in production use; set by
	// in-package tests via setFaultInjector.
	faults *faultpoint.Injector
	// segSerial[i], once set, pins group i to the serial path in segmented
	// scans: its speculative boundary frontier exceeded SegmentMaxFrontier,
	// so the group is almost always mid-match and segmentation buys nothing
	// (see segment.go). Sticky for the ruleset's lifetime.
	segSerial []atomic.Bool

	// Profiling state; all nil/absent when Options.Profile is false.
	profiles []*engine.Profile // per-program sampled state heat
	scanLat  *hist.Histogram   // per-scan wall-clock latency, ns
	chunkLat *hist.Histogram   // per-StreamMatcher.Write latency, ns
	trace    *telemetry.TraceRing
	// lat is the per-stage latency histogram set; nil when Options.Latency
	// is false — the single nil check instrumentation-off scans pay.
	lat *telemetry.Latency
}

// accelOn resolves the Accel knob: every mode but AccelOff accelerates.
func (o Options) accelOn() bool { return o.Accel != AccelOff }

// useLazy reports whether scans run on the lazy-DFA engine.
func (rs *Ruleset) useLazy() bool {
	switch rs.opts.Engine {
	case EngineIMFAnt:
		return false
	case EngineLazyDFA:
		return true
	default:
		return rs.opts.KeepOnMatch
	}
}

// buildEngines lowers the compiled MFSAs into executable programs and their
// lazy-DFA matchers, and sets up the ruleset-wide telemetry collector.
func (rs *Ruleset) buildEngines() {
	rs.lazy = make([]*lazydfa.Matcher, len(rs.programs))
	for i, p := range rs.programs {
		rs.lazy[i] = lazydfa.New(p)
	}
	rs.collector = telemetry.NewCollector(len(rs.patterns))
	// The Lazy section is enabled by buildPlan, which knows how many groups
	// actually run on the lazy-DFA engine.
	if rs.opts.accelOn() {
		rs.collector.EnableAccel(len(rs.programs))
	}
	if rs.opts.Segment != SegmentOff {
		rs.collector.EnableSegment()
	}
	rs.segSerial = make([]atomic.Bool, len(rs.programs))
	if rs.opts.Profile {
		rs.profiles = make([]*engine.Profile, len(rs.programs))
		for i, p := range rs.programs {
			rs.profiles[i] = engine.NewProfile(p, rs.opts.ProfileStride)
		}
		rs.scanLat = new(hist.Histogram)
		rs.chunkLat = new(hist.Histogram)
		rs.collector.SetProfileFunc(rs.profileStats)
	}
	if rs.opts.TraceCapacity > 0 {
		rs.trace = telemetry.NewTraceRing(rs.opts.TraceCapacity)
	}
	if rs.opts.Latency {
		rs.lat = rs.collector.EnableLatency()
	}
	rs.sched = newScanGate(rs.opts.MaxConcurrentScans, rs.opts.MaxQueuedScans)
}

// setFaultInjector arms in on every scan and stream subsequently created
// from the ruleset (already-created Scanners and StreamMatchers keep their
// configuration). Test-only: the chaos conformance suite schedules fault
// storms through it; nil disarms.
func (rs *Ruleset) setFaultInjector(in *faultpoint.Injector) { rs.faults = in }

// profileOf returns automaton i's profile, nil when profiling is off.
func (rs *Ruleset) profileOf(i int) *engine.Profile {
	if rs.profiles == nil {
		return nil
	}
	return rs.profiles[i]
}

// Compile builds a Ruleset from POSIX ERE patterns. Compilation runs under
// Options.Limits; any failure — syntax or budget — is returned as a
// *CompileError attributing the rule and pipeline stage, and the whole
// ruleset is rejected. Use CompileLax to isolate per-rule failures instead.
func Compile(patterns []string, opts Options) (*Ruleset, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("imfant: empty ruleset")
	}
	out, _, err := pipeline.Run(pipeline.Request{
		Patterns:     patterns,
		Merge:        opts.MergeFactor,
		Limits:       opts.Limits.pipeline(),
		FactorMinLen: factorMinLenFor(opts),
		FactorGroup:  opts.Prefilter == PrefilterOn,
		Shapes:       opts.Engine == EngineAuto,
	})
	if err != nil {
		return nil, wrapCompileError(err)
	}
	return newRuleset(patterns, out, opts), nil
}

// CompileLax compiles the ruleset with per-rule fault isolation: rules that
// fail lexing, parsing, construction, or single-FSA optimization are
// dropped and reported in ruleErrs while the surviving rules compile
// exactly as if the ruleset had never contained the bad ones — same
// automata, same matches, and Match.Rule still indexes the original
// patterns slice. err is non-nil only for ruleset-level failures (no rule
// survived, or the merge/ANML stages failed), in which case rs is nil.
func CompileLax(patterns []string, opts Options) (rs *Ruleset, ruleErrs []RuleError, err error) {
	if len(patterns) == 0 {
		return nil, nil, fmt.Errorf("imfant: empty ruleset")
	}
	out, perrs, err := pipeline.Run(pipeline.Request{
		Patterns:     patterns,
		Merge:        opts.MergeFactor,
		Limits:       opts.Limits.pipeline(),
		Lax:          true,
		FactorMinLen: factorMinLenFor(opts),
		FactorGroup:  opts.Prefilter == PrefilterOn,
		Shapes:       opts.Engine == EngineAuto,
	})
	for _, pe := range perrs {
		ruleErrs = append(ruleErrs, RuleError{
			Rule: pe.Rule, Pattern: pe.Pattern, Stage: pe.Stage, Err: pe.Err,
		})
	}
	if err != nil {
		return nil, ruleErrs, wrapCompileError(err)
	}
	return newRuleset(patterns, out, opts), ruleErrs, nil
}

// factorMinLenFor returns the factor-extraction threshold to pass to the
// pipeline: 0 (extraction off) when the prefilter is disabled, the resolved
// MinFactorLen otherwise.
func factorMinLenFor(opts Options) int {
	if opts.Prefilter == PrefilterOff {
		return 0
	}
	return opts.minFactorLen()
}

// wrapCompileError converts a pipeline failure into the public typed form.
func wrapCompileError(err error) error {
	var pe *pipeline.RuleError
	if errors.As(err, &pe) {
		return &CompileError{Rule: pe.Rule, Pattern: pe.Pattern, Stage: pe.Stage, Err: pe.Err}
	}
	return fmt.Errorf("imfant: %w", err)
}

// newRuleset lowers a pipeline output into an executable Ruleset. patterns
// is the full original ruleset — in lax mode the compiled automata may
// cover a subset, but rule ids keep indexing the original slice.
func newRuleset(patterns []string, out *pipeline.Output, opts Options) *Ruleset {
	rs := &Ruleset{
		patterns: append([]string(nil), patterns...),
		mfsas:    out.MFSAs,
		opts:     opts,
		times: StageTimes{
			FrontEnd:     out.Times.FrontEnd,
			ASTToFSA:     out.Times.ASTToFSA,
			SingleFSAOpt: out.Times.SingleME,
			Merging:      out.Times.MergeME,
			ANMLGen:      out.Times.BackEnd,
		},
		comp: metrics.MeasureCompression(out.FSAs, out.MFSAs),
	}
	rs.programs = make([]*engine.Program, len(out.MFSAs))
	for i, z := range out.MFSAs {
		rs.programs[i] = engine.NewProgram(z)
	}
	rs.buildEngines()
	nfasByID := make(map[int]*nfa.NFA, len(out.FSAs))
	for _, a := range out.FSAs {
		nfasByID[a.ID] = a
	}
	rs.buildPlan(out.Shapes, nfasByID)
	rs.buildPrefilter(out.Factors)
	return rs
}

// MustCompile is Compile for rulesets known to be valid; it panics on error.
func MustCompile(patterns []string, opts Options) *Ruleset {
	rs, err := Compile(patterns, opts)
	if err != nil {
		panic(err)
	}
	return rs
}

// NumRules returns the number of compiled patterns.
func (rs *Ruleset) NumRules() int { return len(rs.patterns) }

// NumAutomata returns the number of MFSAs (⌈N/M⌉).
func (rs *Ruleset) NumAutomata() int { return len(rs.programs) }

// Patterns returns the rule sources in compilation order.
func (rs *Ruleset) Patterns() []string {
	return append([]string(nil), rs.patterns...)
}

// States returns the total number of MFSA states.
func (rs *Ruleset) States() int {
	t := 0
	for _, z := range rs.mfsas {
		t += z.NumStates
	}
	return t
}

// Transitions returns the total number of MFSA transitions.
func (rs *Ruleset) Transitions() int {
	t := 0
	for _, z := range rs.mfsas {
		t += z.NumTrans()
	}
	return t
}

// Compression returns the state and transition compression percentages of
// merging versus the standalone optimized FSAs (§VI-A). Rulesets loaded
// from ANML report the same numbers via the serialized per-FSA metadata.
func (rs *Ruleset) Compression() (statesPct, transPct float64) {
	return rs.comp.StatesPct(), rs.comp.TransPct()
}

// CompileTimes returns the per-stage compilation cost. Zero for rulesets
// loaded from ANML.
func (rs *Ruleset) CompileTimes() StageTimes { return rs.times }

// WriteANML serializes every MFSA of the ruleset as concatenated
// extended-ANML documents (§IV-E).
func (rs *Ruleset) WriteANML(w io.Writer) error {
	for _, z := range rs.mfsas {
		if err := anml.Write(w, z); err != nil {
			return err
		}
	}
	return nil
}

// LoadANML reads one or more concatenated extended-ANML documents into an
// executable Ruleset.
func LoadANML(r io.Reader, opts Options) (*Ruleset, error) {
	zs, err := anml.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("imfant: %w", err)
	}
	rs := &Ruleset{opts: opts}
	ruleMax := -1
	for _, z := range zs {
		rs.mfsas = append(rs.mfsas, z)
		rs.programs = append(rs.programs, engine.NewProgram(z))
		for _, info := range z.FSAs {
			if info.RuleID > ruleMax {
				ruleMax = info.RuleID
			}
			rs.comp.StatesBefore += info.NumStates
			rs.comp.TransBefore += info.NumTrans
		}
		rs.comp.StatesAfter += z.NumStates
		rs.comp.TransAfter += z.NumTrans()
	}
	if len(rs.mfsas) == 0 {
		return nil, fmt.Errorf("imfant: no ANML documents found")
	}
	rs.patterns = make([]string, ruleMax+1)
	for _, z := range rs.mfsas {
		for _, info := range z.FSAs {
			rs.patterns[info.RuleID] = info.Pattern
		}
	}
	rs.buildEngines()
	// Re-derive the per-rule shapes from the serialized pattern sources; the
	// eager-DFA strategy needs the optimized per-rule NFAs, which ANML does
	// not carry, so it stays off for loaded rulesets.
	var shapes []strategy.Shape
	if opts.Engine == EngineAuto {
		shapes = shapesOf(rs.patterns)
	}
	rs.buildPlan(shapes, nil)
	if opts.Prefilter != PrefilterOff {
		rs.buildPrefilter(factorsOf(rs.patterns, opts.minFactorLen()))
	}
	return rs, nil
}

// FindAll scans input and returns every match of every rule, ordered by end
// offset and then rule index. For large inputs with many matches prefer
// Scan or Count.
func (rs *Ruleset) FindAll(input []byte) []Match {
	out, _ := rs.FindAllContext(context.Background(), input)
	return out
}

// FindAllContext is FindAll under a context: cancellation or deadline
// expiry stops the scan at the next engine checkpoint (about every 4 KiB of
// input per automaton) and returns the context's error with nil matches.
func (rs *Ruleset) FindAllContext(ctx context.Context, input []byte) ([]Match, error) {
	// Large buffers take the segment-parallel path: the input is cut into
	// per-worker segments with exact boundary stitching, so the result is
	// byte-identical to the serial scan (see segment.go).
	if parts := rs.segmentParts(len(input), 0); parts > 1 {
		return rs.findAllSegmented(ctx, input, parts)
	}
	return rs.NewScanner().FindAllContext(ctx, input)
}

// Scan streams every match to fn, automaton by automaton, on the engine
// selected by Options.Engine. Hot paths scanning many inputs should reuse a
// Scanner instead, which keeps per-goroutine buffers — and, in lazy-DFA
// mode, the transition cache — warm across calls.
func (rs *Ruleset) Scan(input []byte, fn func(Match)) {
	rs.NewScanner().Scan(input, fn)
}

// ScanContext is Scan under a context: cancellation stops the scan at the
// next checkpoint; matches already streamed to fn before that point were
// delivered, and the context's error is returned.
func (rs *Ruleset) ScanContext(ctx context.Context, input []byte, fn func(Match)) error {
	return rs.NewScanner().ScanContext(ctx, input, fn)
}

// Count returns the total number of match events in input.
func (rs *Ruleset) Count(input []byte) int64 {
	return rs.NewScanner().Count(input)
}

// CountContext is Count under a context; on cancellation it returns the
// partial count together with the context's error.
func (rs *Ruleset) CountContext(ctx context.Context, input []byte) (int64, error) {
	return rs.NewScanner().CountContext(ctx, input)
}

// CountPerRule returns the number of match events per rule, indexed like
// the compiled patterns.
func (rs *Ruleset) CountPerRule(input []byte) []int64 {
	return rs.NewScanner().CountPerRule(input)
}

// Scanner is a reusable matching context over one Ruleset: the scratch
// state of every automaton's engine, plus — in lazy-DFA mode — the lazily
// built transition caches, which stay warm across scans of similar traffic.
// A Scanner is not safe for concurrent use; create one per goroutine (the
// shared Ruleset remains concurrency-safe).
type Scanner struct {
	rs *Ruleset
	// Per-automaton runners, indexed like rs.programs; exactly one entry is
	// non-nil per automaton, selected by the plan's strategy for that group
	// (anchored groups are stateless and have no runner at all).
	runners  []*engine.Runner             // StrategyIMFAnt groups
	lazies   []*lazydfa.Runner            // StrategyLazyDFA groups
	acs      []*ahocorasick.StreamScanner // StrategyAC groups
	dfaRuns  []*dfa.Runner                // StrategyDFA groups
	ruleHits []int64                      // per-rule match counts, scanner lifetime
	timeouts int64                        // scans cut short by Options.ScanTimeout
	strat    [numStrategies]stratTotals   // scanner-local per-strategy totals
	faults   *faultpoint.Injector

	// Prefilter scratch; nil/zero while the ruleset is ungated.
	sweep  *ahocorasick.Sweeper
	active []bool
	pref   prefCounters
}

// stratTotals accumulates one owner's per-strategy activity, feeding the
// local Stats snapshot's Strategy section (and, for the strategies without a
// stateful runner, the top-level scan totals too).
type stratTotals struct {
	scans, bytes, matches int64
}

func (t *stratTotals) fold(bytes, matches int64) {
	t.scans++
	t.bytes += bytes
	t.matches += matches
}

// NewScanner returns a matching context for the ruleset.
func (rs *Ruleset) NewScanner() *Scanner {
	n := len(rs.programs)
	s := &Scanner{
		rs:       rs,
		runners:  make([]*engine.Runner, n),
		lazies:   make([]*lazydfa.Runner, n),
		acs:      make([]*ahocorasick.StreamScanner, n),
		dfaRuns:  make([]*dfa.Runner, n),
		ruleHits: make([]int64, len(rs.patterns)),
		faults:   rs.faults,
	}
	for i, p := range rs.programs {
		switch rs.plan.strat[i] {
		case StrategyLazyDFA:
			s.lazies[i] = lazydfa.NewRunner(rs.lazy[i])
		case StrategyAC:
			s.acs[i] = rs.plan.ac[i].m.NewStreamScanner()
		case StrategyAnchored:
			// Stateless: evaluated directly from the plan.
		case StrategyDFA:
			s.dfaRuns[i] = dfa.NewRunner(rs.plan.dfas[i])
		default:
			s.runners[i] = engine.NewRunner(p)
		}
	}
	return s
}

// Scan streams every match in input to fn, automaton by automaton.
func (s *Scanner) Scan(input []byte, fn func(Match)) {
	s.run(context.Background(), input, fn)
}

// ScanContext is Scan under a context: cancellation stops the scan at the
// next checkpoint; matches already streamed to fn before that point were
// delivered, and the context's error is returned.
func (s *Scanner) ScanContext(ctx context.Context, input []byte, fn func(Match)) error {
	_, err := s.run(ctx, input, fn)
	return err
}

// FindAllContext is FindAll under a context: on cancellation it returns
// nil matches and the context's error.
func (s *Scanner) FindAllContext(ctx context.Context, input []byte) ([]Match, error) {
	var out []Match
	if err := s.ScanContext(ctx, input, func(m Match) { out = append(out, m) }); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Rule < out[j].Rule
	})
	return out, nil
}

// Count returns the total number of match events in input.
func (s *Scanner) Count(input []byte) int64 {
	total, _ := s.CountContext(context.Background(), input)
	return total
}

// CountContext is Count under a context; on cancellation it returns the
// partial count together with the context's error.
func (s *Scanner) CountContext(ctx context.Context, input []byte) (int64, error) {
	results, err := s.run(ctx, input, nil)
	var total int64
	for _, res := range results {
		total += res.matches
	}
	return total, err
}

// CountPerRule returns the number of match events per rule, indexed like
// the compiled patterns.
func (s *Scanner) CountPerRule(input []byte) []int64 {
	results, _ := s.run(context.Background(), input, nil)
	out := make([]int64, len(s.rs.patterns))
	for i, res := range results {
		for fsa, c := range res.perFSA {
			out[s.rs.programs[i].Rules()[fsa].RuleID] += c
		}
	}
	return out
}

type scanResult struct {
	matches int64
	perFSA  []int64
}

// run executes every automaton over input. The context is polled at engine
// checkpoints (DefaultCheckpointEvery bytes); on cancellation the partial
// results gathered so far are returned with the context's error.
func (s *Scanner) run(ctx context.Context, input []byte, fn func(Match)) ([]scanResult, error) {
	rs := s.rs
	check := timeoutCheckpoint(checkpointOf(ctx), rs.opts.ScanTimeout)
	if rs.scanLat != nil {
		defer func(t0 time.Time) { rs.scanLat.Record(time.Since(t0).Nanoseconds()) }(time.Now())
	}
	if rs.lat != nil {
		defer func(t0 time.Time) {
			rs.lat.Record(telemetry.StageScan, time.Since(t0).Nanoseconds())
		}(time.Now())
	}
	out := make([]scanResult, 0, len(rs.programs))
	if rs.trace != nil {
		rs.trace.Record(telemetry.Event{Kind: telemetry.EventScanBegin,
			Automaton: -1, Rule: -1, Offset: -1, Value: int64(len(input))})
		defer func() {
			var total int64
			for _, res := range out {
				total += res.matches
			}
			rs.trace.Record(telemetry.Event{Kind: telemetry.EventScanEnd,
				Automaton: -1, Rule: -1, Offset: -1, Value: total})
		}()
	}
	gate, err := s.prefilterGate(input, check)
	if err != nil {
		return out, s.noteErr(err)
	}
	for i, p := range rs.programs {
		if check != nil && i > 0 {
			// Poll between automata too, so a deadline that expired during
			// automaton i-1's final block (past its last in-chunk
			// checkpoint) still cuts the scan off deterministically.
			if err := check(); err != nil {
				return out, s.noteErr(err)
			}
		}
		if gate != nil && !gate[i] {
			// No member rule's factor occurred anywhere in input, so none
			// can match: skip the whole automaton execution.
			out = append(out, scanResult{})
			if rs.trace != nil {
				rs.trace.Record(telemetry.Event{Kind: telemetry.EventPrefilterSkip,
					Automaton: int32(i), Rule: -1, Offset: -1, Value: int64(len(input))})
			}
			continue
		}
		var onMatch func(fsa, end int)
		rules := p.Rules()
		if fn != nil {
			onMatch = func(fsa, end int) {
				fn(Match{Rule: rules[fsa].RuleID, Pattern: rules[fsa].Pattern, End: end})
			}
		}
		if rs.trace != nil {
			inner := onMatch
			automaton := i
			onMatch = func(fsa, end int) {
				rs.trace.Record(telemetry.Event{Kind: telemetry.EventMatch,
					Automaton: int32(automaton), Rule: int32(rules[fsa].RuleID),
					Offset: int64(end), Value: 1})
				if inner != nil {
					inner(fsa, end)
				}
			}
		}
		// Stage timing brackets the whole dispatch, including the degraded
		// exits — a timed-out automaton's wall clock is exactly the sample
		// an operator wants attributed. stepErr is handled after the timer
		// closes so every exit path records.
		st0 := rs.stageStart()
		var stepErr error
		switch {
		case s.lazies[i] != nil:
			res := s.lazies[i].Run(input, lazydfa.Config{
				KeepOnMatch: rs.opts.KeepOnMatch,
				MaxStates:   rs.opts.LazyDFAMaxStates,
				OnMatch:     onMatch,
				Checkpoint:  check,
				Accel:       rs.opts.accelOn(),
				Profile:     rs.profileOf(i),
				ThrashRetry: rs.opts.thrashRetryOn(),
				Faults:      s.faults,
			})
			s.record(p, res.Matches, int64(res.Symbols), res.PerFSA)
			rs.collector.AddStrategyBytes(int(StrategyLazyDFA), int64(res.Symbols))
			s.strat[StrategyLazyDFA].fold(int64(res.Symbols), res.Matches)
			var thrash, grew, pinned int64
			if res.Thrashed {
				thrash = 1
			}
			if res.Grew {
				grew = 1
			}
			if res.Pinned {
				pinned = 1
			}
			if grew != 0 || pinned != 0 {
				rs.collector.AddLazyDegraded(grew, pinned)
			}
			rs.collector.AddLazyScan(res.CacheHits, res.CacheMisses, int64(res.Flushes), thrash)
			rs.collector.SetCachedStates(i, int64(res.CachedStates))
			rs.collector.AddAccelScan(res.AccelBytes)
			rs.collector.SetAccelStates(i, int64(res.AccelStates))
			if rs.trace != nil {
				if res.Flushes > 0 {
					rs.trace.Record(telemetry.Event{Kind: telemetry.EventLazyFlush,
						Automaton: int32(i), Rule: -1, Offset: -1, Value: int64(res.Flushes)})
				}
				if res.FellBack {
					rs.trace.Record(telemetry.Event{Kind: telemetry.EventLazyFallback,
						Automaton: int32(i), Rule: -1, Offset: -1, Value: thrash})
				}
				if res.Pinned {
					rs.trace.Record(telemetry.Event{Kind: telemetry.EventLazyPin,
						Automaton: int32(i), Rule: -1, Offset: -1, Value: 1})
				}
			}
			out = append(out, scanResult{matches: res.Matches, perFSA: res.PerFSA})
			stepErr = s.lazies[i].Err()
		case s.acs[i] != nil:
			res, err := s.runAC(i, input, check, onMatch)
			out = append(out, res)
			stepErr = err
		case s.dfaRuns[i] != nil:
			res, err := s.runDFA(i, input, check, onMatch)
			out = append(out, res)
			stepErr = err
		case rs.plan.anch[i] != nil:
			out = append(out, s.runAnchored(i, input, onMatch))
		default:
			res := s.runners[i].Run(input, engine.Config{
				KeepOnMatch: rs.opts.KeepOnMatch,
				OnMatch:     onMatch,
				Checkpoint:  check,
				Accel:       rs.opts.accelOn(),
				Profile:     rs.profileOf(i),
				Faults:      s.faults,
			})
			s.record(p, res.Matches, int64(res.Symbols), res.PerFSA)
			rs.collector.AddStrategyBytes(int(StrategyIMFAnt), int64(res.Symbols))
			s.strat[StrategyIMFAnt].fold(int64(res.Symbols), res.Matches)
			rs.collector.AddAccelScan(res.AccelBytes)
			out = append(out, scanResult{matches: res.Matches, perFSA: res.PerFSA})
			stepErr = s.runners[i].Err()
		}
		rs.stageEnd(telemetry.StrategyStage(int(rs.plan.strat[i])), st0)
		if stepErr != nil {
			return out, s.noteErr(stepErr)
		}
	}
	return out, nil
}

// runAC executes pure-AC group i: the Aho–Corasick scan over the member
// literals is the whole group execution, and it doubles as the group's
// factor sweep in the prefilter accounting (satellite of the double-scan
// fix: these groups are never ALSO swept by the factor prefilter).
func (s *Scanner) runAC(i int, input []byte, check func() error, onMatch func(fsa, end int)) (scanResult, error) {
	rs := s.rs
	sc := s.acs[i]
	before := sc.Skipped()
	res, distinct, scanned, err := rs.acScan(i, sc, input, check, s.faults, onMatch)
	s.record(rs.programs[i], res.matches, scanned, res.perFSA)
	rs.collector.AddStrategyBytes(int(StrategyAC), scanned)
	rs.collector.AddAccelScan(sc.Skipped() - before)
	s.strat[StrategyAC].fold(scanned, res.matches)
	if rs.prefEnabled {
		rs.collector.AddPrefilterScan(1, int64(distinct), 0, 0)
		s.pref.sweeps++
		s.pref.hits += int64(distinct)
	}
	return res, err
}

// runDFA executes eager-DFA group i: one table lookup per byte.
func (s *Scanner) runDFA(i int, input []byte, check func() error, onMatch func(fsa, end int)) (scanResult, error) {
	rs := s.rs
	r := s.dfaRuns[i]
	res := r.Run(input, dfa.Config{OnMatch: onMatch, Checkpoint: check, Faults: s.faults})
	s.record(rs.programs[i], res.Matches, res.Symbols, res.PerRule)
	rs.collector.AddStrategyBytes(int(StrategyDFA), res.Symbols)
	s.strat[StrategyDFA].fold(res.Symbols, res.Matches)
	return scanResult{matches: res.Matches, perFSA: res.PerRule}, r.Err()
}

// runAnchored executes anchored-literal group i: bounded prefix/suffix
// compares (plus at most one violating-byte hunt) decide every member.
// The whole input is considered covered — the checks are exact over it.
func (s *Scanner) runAnchored(i int, input []byte, onMatch func(fsa, end int)) scanResult {
	rs := s.rs
	res := rs.anchScan(i, input, onMatch)
	s.record(rs.programs[i], res.matches, int64(len(input)), res.perFSA)
	rs.collector.AddStrategyBytes(int(StrategyAnchored), int64(len(input)))
	s.strat[StrategyAnchored].fold(int64(len(input)), res.matches)
	return res
}

// noteErr folds a failed scan into the degradation telemetry (ruleset-wide
// and the scanner's own timeout counter), records the scan_error trace
// span, and returns err unchanged.
func (s *Scanner) noteErr(err error) error {
	if err != nil {
		noteDegraded(s.rs.collector, err)
		if errors.Is(err, ErrScanTimeout) {
			s.timeouts++
		}
		s.rs.traceScanError(err)
	}
	return err
}

// record folds one automaton execution into the scanner's per-rule table
// and the ruleset-wide telemetry collector. Called once per (scan,
// automaton) — never inside the per-byte loop.
func (s *Scanner) record(p *engine.Program, matches, symbols int64, perFSA []int64) {
	c := s.rs.collector
	c.AddScans(1)
	c.AddBytes(symbols)
	c.AddMatches(matches)
	rules := p.Rules()
	for fsa, n := range perFSA {
		if n != 0 {
			id := rules[fsa].RuleID
			c.AddRuleHits(id, n)
			if id >= 0 && id < len(s.ruleHits) {
				s.ruleHits[id] += n
			}
		}
	}
}

// acScan is the shared pure-AC group execution: a resumable Aho–Corasick
// scan over the member literals in checkpoint-sized blocks, reporting every
// (FSA, end) event. distinct counts member literals seen at least once (the
// group's factor-sweep hit count) and scanned is how many input bytes were
// actually consumed before an error, so accounting on the cancel path stays
// truthful.
func (rs *Ruleset) acScan(i int, sc *ahocorasick.StreamScanner, input []byte,
	check func() error, fi *faultpoint.Injector, onMatch func(fsa, end int)) (res scanResult, distinct int, scanned int64, err error) {
	g := rs.plan.ac[i]
	sc.Reset()
	sc.SetAccel(rs.opts.accelOn())
	res.perFSA = make([]int64, g.rules)
	seen := make([]bool, g.rules)
	const block = engine.DefaultCheckpointEvery
	for off := 0; off < len(input); off += block {
		if check != nil {
			if err = check(); err != nil {
				return res, distinct, scanned, err
			}
		}
		fi.Stall()
		end := off + block
		if end > len(input) {
			end = len(input)
		}
		base := off
		sc.Scan(input[off:end], func(pat, e int) {
			res.matches++
			res.perFSA[pat]++
			if !seen[pat] {
				seen[pat] = true
				distinct++
			}
			if onMatch != nil {
				onMatch(pat, base+e)
			}
		})
		scanned = int64(end)
	}
	return res, distinct, scanned, nil
}

// anchScan is the shared anchored-literal group execution: every member is
// decided by O(len(prefix)+len(suffix)) compares plus at most one vectorized
// hunt for a byte its middle cannot consume.
func (rs *Ruleset) anchScan(i int, input []byte, onMatch func(fsa, end int)) scanResult {
	g := rs.plan.anch[i]
	res := scanResult{perFSA: make([]int64, len(g.rules))}
	for fsa := range g.rules {
		if end, ok := g.rules[fsa].match(input); ok {
			res.matches++
			res.perFSA[fsa]++
			if onMatch != nil {
				onMatch(fsa, end)
			}
		}
	}
	return res
}

// CountParallel scans input with the paper's multi-threaded scheme
// (§VI-C2): a pool of `threads` workers each executing whole MFSAs until
// none remain. It returns the total match count. A panic inside a worker is
// contained and returned as an error instead of crashing the process.
func (rs *Ruleset) CountParallel(input []byte, threads int) (int64, error) {
	return rs.CountParallelContext(context.Background(), input, threads)
}

// CountParallelContext is CountParallel under a context: cancellation or
// deadline expiry stops every worker at its next checkpoint and returns the
// context's error. When Options.MaxConcurrentScans bounds the ruleset, a
// call that finds every slot busy and the wait queue full is shed with
// ErrOverloaded before doing any work.
func (rs *Ruleset) CountParallelContext(ctx context.Context, input []byte, threads int) (int64, error) {
	// With segmentation enabled the parallelism is intra-input: every group
	// gets all the workers over its own segment set, instead of whole
	// automata being dealt out to the pool. Results are byte-identical
	// (exact boundary stitching — see segment.go).
	if parts := rs.segmentParts(len(input), threads); parts > 1 {
		return rs.scanSegmented(ctx, input, parts, nil)
	}
	// The ScanTimeout budget is anchored BEFORE the admission gate, so time
	// spent queueing for a slot is charged against the same deadline the
	// scan runs under (it used to re-arm after acquire, letting a saturated
	// gate stretch total latency to queue-wait + ScanTimeout).
	deadline := scanDeadline(rs.opts.ScanTimeout)
	if err := rs.sched.acquire(ctx, deadline); err != nil {
		return 0, rs.noteParallelErr(err)
	}
	defer rs.sched.release()
	cfg := engine.Config{KeepOnMatch: rs.opts.KeepOnMatch,
		Checkpoint: deadlineCheckpoint(checkpointOf(ctx), deadline),
		Accel:      rs.opts.accelOn(), Faults: rs.faults}
	if rs.profiles != nil {
		defer func(t0 time.Time) { rs.scanLat.Record(time.Since(t0).Nanoseconds()) }(time.Now())
	}
	if rs.lat != nil {
		// The scan stage starts after admission, so queue wait under a
		// saturated gate is not misattributed to scanning.
		defer func(t0 time.Time) {
			rs.lat.Record(telemetry.StageScan, time.Since(t0).Nanoseconds())
		}(time.Now())
	}
	gate, err := rs.prefilterSelect(input, cfg.Checkpoint)
	if err != nil {
		return 0, rs.noteParallelErr(err)
	}
	// Strategy-routed groups run inline — their scans are single-automaton
	// and cheap — while the default-engine groups fan out to the worker
	// pool. idx maps the executed-program index back to the ruleset
	// automaton index for profile attribution.
	var total int64
	var progs []*engine.Program
	var idx []int
	for i := range rs.programs {
		if gate != nil && !gate[i] {
			continue
		}
		st0 := rs.stageStart()
		switch rs.plan.strat[i] {
		case StrategyAC:
			n, err := rs.countACGroup(i, input, cfg.Checkpoint)
			rs.stageEnd(telemetry.StageStrategyAC, st0)
			if err != nil {
				return 0, rs.noteParallelErr(err)
			}
			total += n
		case StrategyAnchored:
			total += rs.countAnchoredGroup(i, input, nil)
			rs.stageEnd(telemetry.StageStrategyAnchored, st0)
		case StrategyDFA:
			n, err := rs.countDFAGroup(i, input, cfg.Checkpoint, nil)
			rs.stageEnd(telemetry.StageStrategyDFA, st0)
			if err != nil {
				return 0, rs.noteParallelErr(err)
			}
			total += n
		default:
			progs = append(progs, rs.programs[i])
			idx = append(idx, i)
		}
	}
	if rs.profiles != nil && len(progs) > 1 {
		// Heat-balanced feeding: hand the hottest automata (by sampled state
		// visits) to the worker pool first. RunParallel's workers pull from
		// an atomic queue, so descending-cost order approximates LPT
		// scheduling — the expensive groups start immediately instead of
		// landing last on an otherwise-drained pool.
		heat := make([]int64, len(progs))
		for j := range idx {
			heat[j] = rs.groupHeat(idx[j])
		}
		order := segment.OrderByHeat(heat)
		sp := make([]*engine.Program, len(progs))
		si := make([]int, len(idx))
		for j, o := range order {
			sp[j], si[j] = progs[o], idx[o]
		}
		progs, idx = sp, si
	}
	if rs.profiles != nil {
		cfg.ProfileFor = func(j int) *engine.Profile { return rs.profileOf(idx[j]) }
	}
	if len(progs) == 0 {
		return total, nil
	}
	pt0 := rs.stageStart()
	results, err := engine.RunParallel(progs, input, threads, cfg)
	rs.stageEnd(telemetry.StageParallel, pt0)
	def := rs.defaultStrategy()
	for j, res := range results {
		rs.collector.AddScans(1)
		rs.collector.AddBytes(int64(res.Symbols))
		rs.collector.AddMatches(res.Matches)
		rs.collector.AddAccelScan(res.AccelBytes)
		rs.collector.AddStrategyBytes(int(def), int64(res.Symbols))
		rules := progs[j].Rules()
		for fsa, n := range res.PerFSA {
			if n != 0 {
				rs.collector.AddRuleHits(rules[fsa].RuleID, n)
			}
		}
	}
	if err != nil {
		// err may join several workers' failures (panics, timeouts); each
		// is accounted individually in the Degraded section, and the
		// scan_error span's cause mask carries the union.
		return 0, rs.noteParallelErr(err)
	}
	return total + engine.TotalMatches(results), nil
}

// noteParallelErr is noteErr's ruleset-level sibling for the parallel scan
// path: degradation counters plus the scan_error trace span.
func (rs *Ruleset) noteParallelErr(err error) error {
	if err != nil {
		noteDegraded(rs.collector, err)
		rs.traceScanError(err)
	}
	return err
}

// countACGroup runs pure-AC group i for CountParallel, with a fresh
// streaming scanner (the parallel path keeps no per-call scratch).
func (rs *Ruleset) countACGroup(i int, input []byte, check func() error) (int64, error) {
	sc := rs.plan.ac[i].m.NewStreamScanner()
	res, distinct, scanned, err := rs.acScan(i, sc, input, check, rs.faults, nil)
	rs.collector.AddScans(1)
	rs.collector.AddBytes(scanned)
	rs.collector.AddMatches(res.matches)
	rs.collector.AddStrategyBytes(int(StrategyAC), scanned)
	rs.collector.AddAccelScan(sc.Skipped())
	if rs.prefEnabled {
		rs.collector.AddPrefilterScan(1, int64(distinct), 0, 0)
	}
	rs.foldRuleHits(i, res.perFSA)
	return res.matches, err
}

// countAnchoredGroup runs anchored-literal group i for CountParallel and
// segmented scans; onMatch, when non-nil, receives every (fsa, end) event.
func (rs *Ruleset) countAnchoredGroup(i int, input []byte, onMatch func(fsa, end int)) int64 {
	res := rs.anchScan(i, input, onMatch)
	rs.collector.AddScans(1)
	rs.collector.AddBytes(int64(len(input)))
	rs.collector.AddMatches(res.matches)
	rs.collector.AddStrategyBytes(int(StrategyAnchored), int64(len(input)))
	rs.foldRuleHits(i, res.perFSA)
	return res.matches
}

// countDFAGroup runs eager-DFA group i for CountParallel and segmented
// scans; onMatch, when non-nil, receives every (fsa, end) event.
func (rs *Ruleset) countDFAGroup(i int, input []byte, check func() error, onMatch func(fsa, end int)) (int64, error) {
	r := dfa.NewRunner(rs.plan.dfas[i])
	res := r.Run(input, dfa.Config{Checkpoint: check, Faults: rs.faults, OnMatch: onMatch})
	rs.collector.AddScans(1)
	rs.collector.AddBytes(res.Symbols)
	rs.collector.AddMatches(res.Matches)
	rs.collector.AddStrategyBytes(int(StrategyDFA), res.Symbols)
	rs.foldRuleHits(i, res.PerRule)
	return res.Matches, r.Err()
}

// foldRuleHits attributes per-FSA match counts of automaton i to rule ids in
// the ruleset collector.
func (rs *Ruleset) foldRuleHits(i int, perFSA []int64) {
	rules := rs.programs[i].Rules()
	for fsa, n := range perFSA {
		if n != 0 {
			rs.collector.AddRuleHits(rules[fsa].RuleID, n)
		}
	}
}

// checkpointOf adapts a context to an engine checkpoint; contexts that can
// never be cancelled poll nothing.
func checkpointOf(ctx context.Context) func() error {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return ctx.Err
}

// Activity runs the Table II instrumentation: the average number of
// (active state, active FSA) pairs per input symbol and the maximum number
// of distinct simultaneously-active FSAs.
func (rs *Ruleset) Activity(input []byte) (avgActive float64, maxActive int) {
	var pairs int64
	var symbols int64
	for _, p := range rs.programs {
		res := engine.Run(p, input, engine.Config{Stats: true, KeepOnMatch: rs.opts.KeepOnMatch})
		pairs += res.ActivePairsTotal
		symbols = int64(res.Symbols)
		if res.MaxActiveFSAs > maxActive {
			maxActive = res.MaxActiveFSAs
		}
	}
	if symbols == 0 {
		return 0, maxActive
	}
	return float64(pairs) / float64(symbols), maxActive
}
