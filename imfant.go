// Package imfant is a multi-regular-expression matching library built on
// the Multi-RE Finite State Automaton (MFSA) model of "One Automaton to
// Rule Them All: Beyond Multiple Regular Expressions Execution" (CGO 2024).
//
// A Ruleset compiles a set of POSIX ERE patterns through the paper's
// multi-level framework — lexical/syntactic analysis, Thompson construction,
// single-FSA optimization (ε-removal, loop expansion, multiplicity
// simplification), and merging of morphologically identical sub-paths into
// MFSAs — and executes them with the iMFAnt engine, which tracks the
// activation function so each merged RE's matches stay exact.
//
// Quick start:
//
//	rs, err := imfant.Compile([]string{"GET /admin", "cmd\\.exe"}, imfant.Options{})
//	if err != nil { ... }
//	for _, m := range rs.FindAll(payload) {
//		fmt.Printf("rule %d (%s) matched ending at %d\n", m.Rule, m.Pattern, m.End)
//	}
package imfant

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/anml"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/mfsa"
	"repro/internal/pipeline"
)

// Options configures compilation and matching.
type Options struct {
	// MergeFactor is the paper's M: how many REs are merged into each
	// MFSA. The ruleset is split into ⌈N/M⌉ sequential groups. Zero (or
	// a value ≥ the ruleset size) merges everything into one MFSA
	// ("M = all"), which maximizes compression; 1 disables merging and
	// degenerates to plain iNFAnt over per-RE NFAs.
	MergeFactor int
	// KeepOnMatch disables the paper's Eq. 5 pop: a rule stays active
	// after matching, so every longer match of the same path is also
	// reported. Off by default (paper semantics).
	KeepOnMatch bool
}

// Match is one reported match.
type Match struct {
	// Rule is the index of the pattern within the compiled ruleset.
	Rule int
	// Pattern is the rule's source text.
	Pattern string
	// End is the offset of the last byte of the match (inclusive).
	End int
}

// StageTimes reports the cost of each compilation stage (§IV, Fig. 8).
type StageTimes struct {
	FrontEnd, ASTToFSA, SingleFSAOpt, Merging, ANMLGen time.Duration
}

// Total returns the end-to-end compilation time.
func (st StageTimes) Total() time.Duration {
	return st.FrontEnd + st.ASTToFSA + st.SingleFSAOpt + st.Merging + st.ANMLGen
}

// Ruleset is a compiled, immutable set of regular expressions ready for
// matching. Create one with Compile or LoadANML. A Ruleset is safe for
// concurrent use; per-goroutine scratch state lives in Matchers.
type Ruleset struct {
	patterns []string
	mfsas    []*mfsa.MFSA
	programs []*engine.Program
	times    StageTimes
	comp     metrics.Compression
	opts     Options
}

// Compile builds a Ruleset from POSIX ERE patterns.
func Compile(patterns []string, opts Options) (*Ruleset, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("imfant: empty ruleset")
	}
	out, err := pipeline.Compile(patterns, opts.MergeFactor, nil)
	if err != nil {
		return nil, err
	}
	rs := &Ruleset{
		patterns: append([]string(nil), patterns...),
		mfsas:    out.MFSAs,
		opts:     opts,
		times: StageTimes{
			FrontEnd:     out.Times.FrontEnd,
			ASTToFSA:     out.Times.ASTToFSA,
			SingleFSAOpt: out.Times.SingleME,
			Merging:      out.Times.MergeME,
			ANMLGen:      out.Times.BackEnd,
		},
		comp: metrics.MeasureCompression(out.FSAs, out.MFSAs),
	}
	rs.programs = make([]*engine.Program, len(out.MFSAs))
	for i, z := range out.MFSAs {
		rs.programs[i] = engine.NewProgram(z)
	}
	return rs, nil
}

// MustCompile is Compile for rulesets known to be valid; it panics on error.
func MustCompile(patterns []string, opts Options) *Ruleset {
	rs, err := Compile(patterns, opts)
	if err != nil {
		panic(err)
	}
	return rs
}

// NumRules returns the number of compiled patterns.
func (rs *Ruleset) NumRules() int { return len(rs.patterns) }

// NumAutomata returns the number of MFSAs (⌈N/M⌉).
func (rs *Ruleset) NumAutomata() int { return len(rs.programs) }

// Patterns returns the rule sources in compilation order.
func (rs *Ruleset) Patterns() []string {
	return append([]string(nil), rs.patterns...)
}

// States returns the total number of MFSA states.
func (rs *Ruleset) States() int {
	t := 0
	for _, z := range rs.mfsas {
		t += z.NumStates
	}
	return t
}

// Transitions returns the total number of MFSA transitions.
func (rs *Ruleset) Transitions() int {
	t := 0
	for _, z := range rs.mfsas {
		t += z.NumTrans()
	}
	return t
}

// Compression returns the state and transition compression percentages of
// merging versus the standalone optimized FSAs (§VI-A). Rulesets loaded
// from ANML report the same numbers via the serialized per-FSA metadata.
func (rs *Ruleset) Compression() (statesPct, transPct float64) {
	return rs.comp.StatesPct(), rs.comp.TransPct()
}

// CompileTimes returns the per-stage compilation cost. Zero for rulesets
// loaded from ANML.
func (rs *Ruleset) CompileTimes() StageTimes { return rs.times }

// WriteANML serializes every MFSA of the ruleset as concatenated
// extended-ANML documents (§IV-E).
func (rs *Ruleset) WriteANML(w io.Writer) error {
	for _, z := range rs.mfsas {
		if err := anml.Write(w, z); err != nil {
			return err
		}
	}
	return nil
}

// LoadANML reads one or more concatenated extended-ANML documents into an
// executable Ruleset.
func LoadANML(r io.Reader, opts Options) (*Ruleset, error) {
	zs, err := anml.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("imfant: %w", err)
	}
	rs := &Ruleset{opts: opts}
	ruleMax := -1
	for _, z := range zs {
		rs.mfsas = append(rs.mfsas, z)
		rs.programs = append(rs.programs, engine.NewProgram(z))
		for _, info := range z.FSAs {
			if info.RuleID > ruleMax {
				ruleMax = info.RuleID
			}
			rs.comp.StatesBefore += info.NumStates
			rs.comp.TransBefore += info.NumTrans
		}
		rs.comp.StatesAfter += z.NumStates
		rs.comp.TransAfter += z.NumTrans()
	}
	if len(rs.mfsas) == 0 {
		return nil, fmt.Errorf("imfant: no ANML documents found")
	}
	rs.patterns = make([]string, ruleMax+1)
	for _, z := range rs.mfsas {
		for _, info := range z.FSAs {
			rs.patterns[info.RuleID] = info.Pattern
		}
	}
	return rs, nil
}

// FindAll scans input and returns every match of every rule, ordered by end
// offset and then rule index. For large inputs with many matches prefer
// Scan or Count.
func (rs *Ruleset) FindAll(input []byte) []Match {
	var out []Match
	rs.Scan(input, func(m Match) { out = append(out, m) })
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// Scan streams every match to fn, automaton by automaton.
func (rs *Ruleset) Scan(input []byte, fn func(Match)) {
	for _, p := range rs.programs {
		rules := p.Rules()
		cfg := engine.Config{
			KeepOnMatch: rs.opts.KeepOnMatch,
			OnMatch: func(fsa, end int) {
				fn(Match{Rule: rules[fsa].RuleID, Pattern: rules[fsa].Pattern, End: end})
			},
		}
		engine.Run(p, input, cfg)
	}
}

// Count returns the total number of match events in input.
func (rs *Ruleset) Count(input []byte) int64 {
	var total int64
	for _, p := range rs.programs {
		total += engine.Run(p, input, engine.Config{KeepOnMatch: rs.opts.KeepOnMatch}).Matches
	}
	return total
}

// CountPerRule returns the number of match events per rule, indexed like
// the compiled patterns.
func (rs *Ruleset) CountPerRule(input []byte) []int64 {
	out := make([]int64, len(rs.patterns))
	for _, p := range rs.programs {
		res := engine.Run(p, input, engine.Config{KeepOnMatch: rs.opts.KeepOnMatch})
		for fsa, c := range res.PerFSA {
			out[p.Rules()[fsa].RuleID] += c
		}
	}
	return out
}

// CountParallel scans input with the paper's multi-threaded scheme
// (§VI-C2): a pool of `threads` workers each executing whole MFSAs until
// none remain. It returns the total match count.
func (rs *Ruleset) CountParallel(input []byte, threads int) int64 {
	results := engine.RunParallel(rs.programs, input, threads, engine.Config{KeepOnMatch: rs.opts.KeepOnMatch})
	return engine.TotalMatches(results)
}

// Activity runs the Table II instrumentation: the average number of
// (active state, active FSA) pairs per input symbol and the maximum number
// of distinct simultaneously-active FSAs.
func (rs *Ruleset) Activity(input []byte) (avgActive float64, maxActive int) {
	var pairs int64
	var symbols int64
	for _, p := range rs.programs {
		res := engine.Run(p, input, engine.Config{Stats: true, KeepOnMatch: rs.opts.KeepOnMatch})
		pairs += res.ActivePairsTotal
		symbols = int64(res.Symbols)
		if res.MaxActiveFSAs > maxActive {
			maxActive = res.MaxActiveFSAs
		}
	}
	if symbols == 0 {
		return 0, maxActive
	}
	return float64(pairs) / float64(symbols), maxActive
}
