package imfant

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/faultpoint"
)

// plannerPatterns exercises every strategy class at once: all-literal rules
// (pure AC), anchored literals, small set-based rules (eager DFA), and
// loop-carrying rules that stay on the default engine.
var plannerPatterns = []string{
	"alpha", "beta7", // literals
	"^HDR:", "trail$", // anchored literals
	"a[bc]d", "x[yz]w", // small, unanchored, finals are sinks → eager DFA
	"ne+dle[0-9]*x", // loops → default engine
	"(foo|bar)baz+", // loops → default engine
}

// plannerTraffic builds n bytes of filler salted with fragments that hit
// every strategy class.
func plannerTraffic(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	frags := []string{
		"the quick brown fox ", "alpha", "beta7", "HDR: stuff", "trail",
		"abd", "acd", "xyw", "needle77x", "neeedlex", "foobazzz", "barbaz",
		"alphabeta7", " filler filler ",
	}
	var out []byte
	for len(out) < n {
		out = append(out, frags[rng.Intn(len(frags))]...)
	}
	return out[:n]
}

// TestStrategyPlanClassification pins the compile-time classification: each
// homogeneous ruleset lands on its fast strategy, a forced engine disables
// the planner, and Stats().Strategy reports the outcome.
func TestStrategyPlanClassification(t *testing.T) {
	for _, tc := range []struct {
		name     string
		patterns []string
		want     Strategy
	}{
		{"all-literal", []string{"alpha", "beta7", "gamma"}, StrategyAC},
		{"anchored", []string{"^HDR:", "trail$"}, StrategyAnchored},
		{"anchored-exact", []string{"^PING$"}, StrategyAnchored},
		{"small-sets", []string{"a[bc]d", "x[yz]w"}, StrategyDFA},
		// Small cyclic NFAs determinize eagerly too; only a group past the
		// state bound stays on the default engine.
		{"loops", []string{"ne+dle[0-9]*x"}, StrategyDFA},
		{"large", []string{"x[0-9]{200}y"}, StrategyIMFAnt},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rs := MustCompile(tc.patterns, Options{MergeFactor: len(tc.patterns)})
			for i, got := range rs.Strategies() {
				if got != tc.want {
					t.Fatalf("group %d classified %v, want %v", i, got, tc.want)
				}
			}
			st := rs.Stats().Strategy
			if st == nil || !st.Planned {
				t.Fatalf("Stats().Strategy = %+v, want a planned section", st)
			}
			total := 0
			for _, g := range st.Groups {
				if g.Strategy != tc.want.String() {
					t.Fatalf("strategy row %+v, want only %q", g, tc.want)
				}
				total += g.Groups
			}
			if total != rs.NumAutomata() {
				t.Fatalf("strategy rows cover %d groups, want %d", total, rs.NumAutomata())
			}
		})
	}

	// A forced engine overrides the planner wholesale.
	for _, tc := range []struct {
		opts Options
		want Strategy
	}{
		{Options{Engine: EngineIMFAnt}, StrategyIMFAnt},
		{Options{Engine: EngineLazyDFA}, StrategyLazyDFA},
	} {
		rs := MustCompile([]string{"alpha", "^HDR:"}, tc.opts)
		for i := range rs.Strategies() {
			if got := rs.StrategyOf(i); got != tc.want {
				t.Fatalf("forced %v: group %d on %v", tc.opts.Engine, i, got)
			}
		}
		if st := rs.Stats().Strategy; st == nil || st.Planned {
			t.Fatalf("forced engine: Stats().Strategy = %+v, want unplanned section", st)
		}
	}
}

// TestACGroupSingleSweepAccounting is the double-scan regression test: an
// all-literal ruleset routes to pure AC, whose scan IS the literal sweep —
// the factor prefilter must not sweep those literals a second time. One scan
// therefore reports exactly one sweep's worth of FactorHits (each occurring
// literal counted once), and no separate factor automaton is built.
func TestACGroupSingleSweepAccounting(t *testing.T) {
	rs := MustCompile([]string{"alpha", "beta7", "gamma"},
		Options{MergeFactor: 3, Prefilter: PrefilterOn})
	if got := rs.StrategyOf(0); got != StrategyAC {
		t.Fatalf("group classified %v, want ac", got)
	}
	// No gatable group remains, so no factor sweep may exist — gating the AC
	// group would scan the same literals twice.
	if rs.PrefilterActive() {
		t.Fatal("factor sweep built over an all-AC ruleset (double literal scan)")
	}
	input := []byte("xx alpha yy beta7 zz alpha ww")
	sc := rs.NewScanner()
	if _, err := sc.FindAllContext(t.Context(), input); err != nil {
		t.Fatal(err)
	}
	st := sc.Stats()
	if st.Prefilter == nil {
		t.Fatal("no prefilter section although AC literal gating is live")
	}
	// One sweep's worth: "alpha" and "beta7" occurred — 2 distinct hits, not
	// 4 (which a second factor sweep over the same literals would produce).
	if st.Prefilter.Sweeps != 1 || st.Prefilter.FactorHits != 2 {
		t.Fatalf("Sweeps = %d, FactorHits = %d, want 1 sweep with 2 hits",
			st.Prefilter.Sweeps, st.Prefilter.FactorHits)
	}
	if rst := rs.Stats().Prefilter; rst == nil || rst.FactorHits != 2 {
		t.Fatalf("ruleset-scope FactorHits = %+v, want 2", rst)
	}

	// Mixed ruleset: the AC group stays out of the factor sweep, which gates
	// only the loop-carrying group.
	mixed := MustCompile([]string{"alpha", "beta7", "needleman[0-9]*x"},
		Options{MergeFactor: 2, Prefilter: PrefilterOn})
	if !mixed.PrefilterActive() {
		t.Fatal("factor sweep missing for the gatable group")
	}
	for _, f := range mixed.PrefilterFactors() {
		if f == "alpha" || f == "beta7" {
			t.Fatalf("AC-routed literal %q also registered as a sweep factor", f)
		}
	}
	sc2 := mixed.NewScanner()
	if _, err := sc2.FindAllContext(t.Context(), input); err != nil {
		t.Fatal(err)
	}
	st2 := sc2.Stats()
	// Two sweeps — the factor sweep plus the AC group's scan — and still 2
	// distinct hits total: the AC literals counted once, "needleman" absent.
	if st2.Prefilter.Sweeps != 2 || st2.Prefilter.FactorHits != 2 {
		t.Fatalf("mixed: Sweeps = %d, FactorHits = %d, want 2 and 2",
			st2.Prefilter.Sweeps, st2.Prefilter.FactorHits)
	}
	if st2.Prefilter.GroupsSkipped != 1 {
		t.Fatalf("mixed: GroupsSkipped = %d, want the gated group skipped", st2.Prefilter.GroupsSkipped)
	}
}

// TestScanTimeoutChargesQueueWait pins the accounting fix in the degradation
// ladder: the ScanTimeout budget is anchored before the scan gate is
// entered, so time spent queued for a slot counts against the same deadline
// and a saturated gate cannot stretch total latency past the budget. The
// queued waiter must fail with ErrScanTimeout well before the slot holder
// releases.
func TestScanTimeoutChargesQueueWait(t *testing.T) {
	checkNoGoroutineLeak(t)
	const stall = 400 * time.Millisecond
	rs := MustCompile([]string{"ab", "cd"}, Options{
		MergeFactor: 1, Engine: EngineIMFAnt,
		MaxConcurrentScans: 1, MaxQueuedScans: 2,
		ScanTimeout: 50 * time.Millisecond,
	})
	rs.setFaultInjector(faultpoint.New(faultpoint.Every(faultpoint.ChunkStall, 1)).
		WithStall(stall))
	input := bytes.Repeat([]byte("abcd"), 4096)
	holder := make(chan error, 1)
	go func() {
		_, err := rs.CountParallel(input, 2)
		holder <- err
	}()
	for i := 0; len(rs.sched.slots) == 0 && i < 2000; i++ {
		time.Sleep(time.Millisecond)
	}
	if len(rs.sched.slots) == 0 {
		t.Fatal("slot holder never acquired its slot")
	}
	t0 := time.Now()
	_, err := rs.CountParallel(input, 2)
	waited := time.Since(t0)
	if !errors.Is(err, ErrScanTimeout) {
		t.Fatalf("queued scan = %v, want ErrScanTimeout charged against the queue wait", err)
	}
	// The holder stalls for 400ms; a timeout observed well before that can
	// only have fired while still queued — the pre-fix behaviour armed the
	// budget after acquiring the slot, so the waiter would have sat the full
	// stall out.
	if waited >= stall {
		t.Fatalf("queued scan waited %v, at least the holder's full %v stall — queue wait was not charged", waited, stall)
	}
	if err := <-holder; err != nil && !errors.Is(err, ErrScanTimeout) {
		t.Fatalf("slot holder failed oddly: %v", err)
	}
	if got := rs.Stats().Degraded.ScanTimeouts; got < 1 {
		t.Fatalf("Degraded.ScanTimeouts = %d, want >= 1", got)
	}
}

// TestStrategyPlannerConformance is the differential check of the tentpole:
// the planner is a pure execution-strategy choice, so planner-on (EngineAuto)
// must produce byte-identical results to both forced legacy engines, across
// prefilter on/off, accel on/off, pop and keep semantics, for FindAll,
// CountParallel, and randomly chunked streams.
func TestStrategyPlannerConformance(t *testing.T) {
	input := plannerTraffic(64<<10, 99)
	rng := rand.New(rand.NewSource(101))
	for _, keep := range []bool{false, true} {
		for _, forced := range []EngineMode{EngineIMFAnt, EngineLazyDFA} {
			base := Options{MergeFactor: 2, KeepOnMatch: keep, Engine: forced,
				Prefilter: PrefilterOff, Accel: AccelOff}
			oracle := MustCompile(plannerPatterns, base)
			want := oracle.FindAll(input)
			if len(want) == 0 {
				t.Fatal("planner traffic produced no matches; conformance vacuous")
			}
			sortMatches(want)
			for _, pf := range []PrefilterMode{PrefilterOff, PrefilterOn} {
				for _, ac := range []AccelMode{AccelOff, AccelOn} {
					opts := Options{MergeFactor: 2, KeepOnMatch: keep,
						Engine: EngineAuto, Prefilter: pf, Accel: ac}
					on := MustCompile(plannerPatterns, opts)
					got := on.FindAll(input)
					sortMatches(got)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("keep=%v forced=%v pf=%v accel=%v: FindAll %d matches, oracle %d",
							keep, forced, pf, ac, len(got), len(want))
					}
					nOn, err := on.CountParallel(input, 4)
					if err != nil {
						t.Fatal(err)
					}
					if nOn != int64(len(want)) {
						t.Fatalf("keep=%v forced=%v pf=%v accel=%v: CountParallel %d, want %d",
							keep, forced, pf, ac, nOn, len(want))
					}
					var streamed []Match
					sm := on.NewStreamMatcher(func(m Match) { streamed = append(streamed, m) })
					for pos := 0; pos < len(input); {
						end := pos + 1 + rng.Intn(4096)
						if end > len(input) {
							end = len(input)
						}
						if _, err := sm.Write(input[pos:end]); err != nil {
							t.Fatal(err)
						}
						pos = end
					}
					if err := sm.Close(); err != nil {
						t.Fatal(err)
					}
					sortMatches(streamed)
					if !reflect.DeepEqual(streamed, want) {
						t.Fatalf("keep=%v forced=%v pf=%v accel=%v: stream %d matches, oracle %d",
							keep, forced, pf, ac, len(streamed), len(want))
					}
				}
			}
		}
	}
}

// TestPrefilterTrackerDisablesIneffectiveSweep drives the runtime
// effectiveness tracker end to end through Stats().Strategy: a gated group
// whose factor occurs in every input wakes on every sweep, so the tracker
// disables its gate after a window; with every gated group disabled the
// sweep itself is elided; a probe sweep on factor-free traffic re-enables
// the gate and gating saves work again.
func TestPrefilterTrackerDisablesIneffectiveSweep(t *testing.T) {
	rs := MustCompile([]string{"needleman[0-9]*x"}, Options{Prefilter: PrefilterOn})
	if !rs.PrefilterActive() {
		t.Fatal("prefilter did not engage")
	}
	sc := rs.NewScanner()
	hot := bytes.Repeat([]byte("stuff needleman7x more "), 8)
	cold := bytes.Repeat([]byte("nothing of note here "), 8)

	// Phase 1: the factor occurs in every input — 100% wake rate. After one
	// tracker window the gate must be off.
	for i := 0; i < trackerWindow; i++ {
		if _, err := sc.FindAllContext(t.Context(), hot); err != nil {
			t.Fatal(err)
		}
	}
	st := rs.Stats().Strategy
	if st == nil || st.GroupsUngated != 1 {
		t.Fatalf("after %d all-wake sweeps: Strategy = %+v, want GroupsUngated 1",
			trackerWindow, st)
	}

	// Phase 2: every gated group is disabled, so the sweep is elided.
	for i := 0; i < 5; i++ {
		if _, err := sc.FindAllContext(t.Context(), hot); err != nil {
			t.Fatal(err)
		}
	}
	st = rs.Stats().Strategy
	if st.SweepsDisabled < 5 {
		t.Fatalf("SweepsDisabled = %d, want >= 5 elided sweeps", st.SweepsDisabled)
	}

	// Phase 3: keep scanning factor-free traffic until a probe sweep fires;
	// it observes the group would not wake and re-enables its gate.
	for i := 0; i < 2*trackerProbeEvery; i++ {
		if _, err := sc.FindAllContext(t.Context(), cold); err != nil {
			t.Fatal(err)
		}
	}
	st = rs.Stats().Strategy
	if st.SweepProbes < 1 {
		t.Fatalf("SweepProbes = %d, want at least one probe", st.SweepProbes)
	}
	if st.GroupsUngated != 0 {
		t.Fatalf("GroupsUngated = %d after factor-free probes, want re-enabled (0)", st.GroupsUngated)
	}

	// Phase 4: with the gate back on, factor-free traffic is skipped again.
	before := rs.Stats().Prefilter.GroupsSkipped
	if _, err := sc.FindAllContext(t.Context(), cold); err != nil {
		t.Fatal(err)
	}
	if after := rs.Stats().Prefilter.GroupsSkipped; after <= before {
		t.Fatalf("GroupsSkipped %d -> %d; re-enabled gate saved nothing", before, after)
	}

	// Throughout: matching stayed exact.
	if got := sc.Count(hot); got != 8 {
		t.Fatalf("Count(hot) = %d, want 8 regardless of tracker state", got)
	}
}
