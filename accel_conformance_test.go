package imfant

import (
	"math/rand"
	"os"
	"reflect"
	"testing"

	"repro/internal/faultpoint"
	"repro/internal/snort"
)

// accelTestPatterns share the '/' start byte so every execution layer's skip
// engages: the lazy DFA's state acceleration, the iMFAnt start-byte skip,
// and the prefilter sweep's root skip. Anchored and $-anchored rules pin the
// stream-edge carve-outs.
var accelTestPatterns = []string{
	"/admin", "/etc/passwd", "/bin/sh[0-9]*", "/usr/(bin|lib)",
	"^GET /", "/logout$", "/cgi-bin/.*\\.pl",
}

// accelTraffic builds n bytes of benign HTTP-ish filler salted with pattern
// fragments, the traffic shape of the snort studies.
func accelTraffic(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	frags := []string{
		"Host: example.com\r\n", "User-Agent: Mozilla\r\n", "Accept: text\r\n",
		"GET /admin HTTP/1.0\r\n", "/etc/passwd", "/bin/sh77", "/usr/lib",
		"GET /logout", "/cgi-bin/x.pl",
	}
	var out []byte
	for len(out) < n {
		out = append(out, frags[rng.Intn(len(frags))]...)
	}
	return out[:n]
}

// TestAccelConformancePublic checks Options.Accel end to end: accel on and
// off produce byte-identical results for FindAll, CountParallel, and
// randomly chunked streams, on both engines, with the prefilter off and on.
func TestAccelConformancePublic(t *testing.T) {
	input := accelTraffic(128<<10, 17)
	rng := rand.New(rand.NewSource(23))
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"imfant", Options{MergeFactor: 2, Engine: EngineIMFAnt, Prefilter: PrefilterOff}},
		{"imfant-pref", Options{MergeFactor: 2, Engine: EngineIMFAnt, Prefilter: PrefilterOn}},
		{"lazy", Options{MergeFactor: 2, Engine: EngineLazyDFA, KeepOnMatch: true, Prefilter: PrefilterOff}},
		{"lazy-pref", Options{MergeFactor: 2, Engine: EngineLazyDFA, KeepOnMatch: true, Prefilter: PrefilterOn}},
		{"lazy-pop", Options{MergeFactor: 2, Engine: EngineLazyDFA, Prefilter: PrefilterOff}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			onOpts, offOpts := tc.opts, tc.opts
			onOpts.Accel = AccelOn
			offOpts.Accel = AccelOff
			on := MustCompile(accelTestPatterns, onOpts)
			off := MustCompile(accelTestPatterns, offOpts)

			want := off.FindAll(input)
			got := on.FindAll(input)
			sortMatches(want)
			sortMatches(got)
			if len(want) == 0 {
				t.Fatal("test traffic produced no matches; conformance vacuous")
			}
			if len(got) != len(want) {
				t.Fatalf("FindAll: %d matches accel on, %d off", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("FindAll match %d differs: %+v vs %+v", i, got[i], want[i])
				}
			}

			nOn, err := on.CountParallel(input, 4)
			if err != nil {
				t.Fatal(err)
			}
			nOff, err := off.CountParallel(input, 4)
			if err != nil {
				t.Fatal(err)
			}
			if nOn != nOff {
				t.Fatalf("CountParallel: %d accel on, %d off", nOn, nOff)
			}

			var streamed []Match
			sm := on.NewStreamMatcher(func(m Match) { streamed = append(streamed, m) })
			for pos := 0; pos < len(input); {
				end := pos + 1 + rng.Intn(4096)
				if end > len(input) {
					end = len(input)
				}
				if _, err := sm.Write(input[pos:end]); err != nil {
					t.Fatal(err)
				}
				pos = end
			}
			if err := sm.Close(); err != nil {
				t.Fatal(err)
			}
			sortMatches(streamed)
			if len(streamed) != len(want) {
				t.Fatalf("stream: %d matches accel on, %d block accel off", len(streamed), len(want))
			}
			for i := range streamed {
				if streamed[i] != want[i] {
					t.Fatalf("stream match %d differs: %+v vs %+v", i, streamed[i], want[i])
				}
			}

			// The accel section must report, and with the '/'-hub ruleset the
			// skips must actually engage (lazy-pop delegates to iMFAnt, whose
			// start-byte skip still fires).
			st := on.Stats()
			if st.Accel == nil {
				t.Fatal("accel on: Stats().Accel is nil")
			}
			if st.Accel.BytesSkipped == 0 {
				t.Fatal("accel on: no bytes skipped on a '/'-hub ruleset")
			}
			if st.Accel.BytesSkipped > st.BytesScanned {
				t.Fatalf("BytesSkipped %d exceeds BytesScanned %d",
					st.Accel.BytesSkipped, st.BytesScanned)
			}
			if stOff := off.Stats(); stOff.Accel != nil {
				t.Fatalf("accel off: Stats().Accel = %+v, want nil", stOff.Accel)
			}
		})
	}
}

// TestSnortAccelAccounting pins the non-overlap invariant between the two
// byte-saving layers on the snort web-attacks ruleset: the prefilter's
// BytesSaved counts automaton executions that never ran, acceleration's
// BytesSkipped counts bytes inside executions that did run — so scanned and
// saved bytes partition the total automaton-byte volume exactly, and skipped
// bytes stay within the scanned share.
func TestSnortAccelAccounting(t *testing.T) {
	f, err := os.Open("internal/snort/testdata/web-attacks.rules")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rules, _, err := snort.ParseRules(f)
	if err != nil {
		t.Fatal(err)
	}
	patterns := make([]string, 0, len(rules))
	for _, ru := range rules {
		patterns = append(patterns, ru.Pattern)
	}
	rs, _, err := CompileLax(patterns, Options{
		MergeFactor: 2, KeepOnMatch: true, Prefilter: PrefilterOn, Accel: AccelOn,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rs.PrefilterActive() {
		t.Fatal("prefilter did not engage")
	}

	benign := accelTraffic(128<<10, 31)
	sc := rs.NewScanner()
	const scans = 3
	for i := 0; i < scans; i++ {
		sc.FindAllContext(t.Context(), benign)
	}
	st := sc.Stats()
	if st.Prefilter == nil || st.Accel == nil {
		t.Fatalf("missing stats sections: prefilter=%v accel=%v", st.Prefilter, st.Accel)
	}
	// Partition invariant: every (automaton, scan, byte) triple is either
	// scanned or saved, never both and never neither.
	total := int64(rs.NumAutomata()) * int64(len(benign)) * scans
	if got := st.BytesScanned + st.Prefilter.BytesSaved; got != total {
		t.Fatalf("BytesScanned %d + BytesSaved %d = %d, want %d (= automata × bytes × scans)",
			st.BytesScanned, st.Prefilter.BytesSaved, got, total)
	}
	if st.Prefilter.BytesSaved == 0 {
		t.Fatal("prefilter saved nothing on benign-heavy traffic")
	}
	// Skipped bytes live inside the scanned share — disjoint from saved.
	if st.Accel.BytesSkipped == 0 {
		t.Fatal("acceleration skipped nothing on the snort ruleset")
	}
	if st.Accel.BytesSkipped > st.BytesScanned {
		t.Fatalf("BytesSkipped %d exceeds BytesScanned %d — the layers overlap",
			st.Accel.BytesSkipped, st.BytesScanned)
	}
	t.Logf("automata=%d scans=%d: scanned %d + saved %d = %d; skipped %d (%.1f%% of scanned)",
		rs.NumAutomata(), scans, st.BytesScanned, st.Prefilter.BytesSaved, total,
		st.Accel.BytesSkipped, 100*float64(st.Accel.BytesSkipped)/float64(st.BytesScanned))

	// The strategy planner must have classified this ruleset (EngineAuto),
	// routing its all-literal groups to pure AC, and the per-strategy bytes
	// must partition BytesScanned exactly — strategy replacements count the
	// bytes they covered just like the engines they displaced.
	if st.Strategy == nil || !st.Strategy.Planned {
		t.Fatalf("Stats().Strategy = %+v, want a planned section", st.Strategy)
	}
	perStrategy := map[string]int64{}
	var stratBytes int64
	for _, g := range st.Strategy.Groups {
		perStrategy[g.Strategy] = g.Bytes
		stratBytes += g.Bytes
	}
	if stratBytes != st.BytesScanned {
		t.Fatalf("strategy bytes sum %d, want BytesScanned %d", stratBytes, st.BytesScanned)
	}
	if perStrategy["ac"] == 0 {
		t.Fatalf("no pure-AC group engaged on the snort ruleset: %+v", st.Strategy.Groups)
	}

	// The partition must survive the degradation ladder: an injected
	// thrash-fallback storm reroutes bytes through the iMFAnt fallback
	// engine mid-scan, yet every (automaton, scan, byte) triple is still
	// scanned or saved exactly once, and the match set is untouched.
	t.Run("injected-thrash", func(t *testing.T) {
		// The forced lazy engine keeps every group on the thrash ladder —
		// under the planner the literal-heavy snort groups route to AC/DFA
		// strategies, which have no cache to thrash.
		rs2, _, err := CompileLax(patterns, Options{
			MergeFactor: 2, KeepOnMatch: true, Prefilter: PrefilterOn, Accel: AccelOn,
			Engine: EngineLazyDFA,
		})
		if err != nil {
			t.Fatal(err)
		}
		baseline, err := rs2.NewScanner().FindAllContext(t.Context(), benign)
		if err != nil {
			t.Fatal(err)
		}
		in := faultpoint.New(faultpoint.Every(faultpoint.LazyThrash, 2))
		rs2.setFaultInjector(in)
		sc2 := rs2.NewScanner()
		for i := 0; i < scans; i++ {
			got, err := sc2.FindAllContext(t.Context(), benign)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, baseline) {
				t.Fatalf("scan %d: injected fallback changed the match set", i)
			}
		}
		if in.Fired(faultpoint.LazyThrash) == 0 {
			t.Fatal("thrash schedule never fired")
		}
		st2 := sc2.Stats()
		total2 := int64(rs2.NumAutomata()) * int64(len(benign)) * scans
		if got := st2.BytesScanned + st2.Prefilter.BytesSaved; got != total2 {
			t.Fatalf("under injected thrash: BytesScanned %d + BytesSaved %d = %d, want %d",
				st2.BytesScanned, st2.Prefilter.BytesSaved, got, total2)
		}
		if st2.Degraded.ThrashFallbacks == 0 {
			t.Fatal("injected fallbacks not accounted in Degraded.ThrashFallbacks")
		}
		if st2.Accel.BytesSkipped > st2.BytesScanned {
			t.Fatalf("BytesSkipped %d exceeds BytesScanned %d under fallback",
				st2.Accel.BytesSkipped, st2.BytesScanned)
		}
	})

	// And it must survive hot-swap: scans routed through a Registry whose
	// current version is swapped between scans still partition each
	// version's byte volume exactly (one sweep per gated scan served).
	t.Run("mid-scan-swap", func(t *testing.T) {
		opts := Options{MergeFactor: 2, KeepOnMatch: true, Prefilter: PrefilterOn, Accel: AccelOn}
		rsA, _, err := CompileLax(patterns, opts)
		if err != nil {
			t.Fatal(err)
		}
		rsB, _, err := CompileLax(patterns, opts)
		if err != nil {
			t.Fatal(err)
		}
		want := rsA.FindAll(benign) // pre-swap oracle; rsB is rule-identical
		r := NewRegistryFrom(rsA)
		scansOf := map[string]int64{"A": 1, "B": 0} // the oracle scan
		for i := 0; i < 6; i++ {
			got := r.FindAll(benign)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("iteration %d: swap changed the match set", i)
			}
			if i%2 == 0 {
				scansOf["A"]++
				r.Swap(rsB)
			} else {
				scansOf["B"]++
				r.Swap(rsA)
			}
		}
		if err := r.DrainOld(t.Context()); err != nil {
			t.Fatal(err)
		}
		for name, rs := range map[string]*Ruleset{"A": rsA, "B": rsB} {
			st := rs.Stats()
			if st.Prefilter == nil || st.Prefilter.Sweeps == 0 {
				t.Fatalf("version %s served no gated scans", name)
			}
			// Sweeps counts literal sweeps executed — the factor sweep plus
			// each AC group's strategy scan — so the partition denominator is
			// the scan-call count the test tracked through the swaps.
			total := int64(rs.NumAutomata()) * int64(len(benign)) * scansOf[name]
			if got := st.BytesScanned + st.Prefilter.BytesSaved; got != total {
				t.Fatalf("version %s: BytesScanned %d + BytesSaved %d = %d, want %d (automata × bytes × %d scans)",
					name, st.BytesScanned, st.Prefilter.BytesSaved, got, total, scansOf[name])
			}
		}
	})
}
