package imfant

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/hist"
	"repro/internal/mfsa"
	"repro/internal/telemetry"
)

// Distribution is an immutable summary of one profiled quantity (scan
// latency, chunk latency, active-set size), backed by a log2-bucketed
// histogram: percentile estimates are within 2× of the exact order
// statistic.
type Distribution struct {
	s hist.Snapshot
}

// Count returns the number of observations.
func (d Distribution) Count() int64 { return d.s.Count }

// Sum returns the sum of the positive observations.
func (d Distribution) Sum() int64 { return d.s.Sum }

// Max returns the largest observation; 0 when empty.
func (d Distribution) Max() int64 { return d.s.Max }

// Mean returns the mean observation; 0 when empty.
func (d Distribution) Mean() float64 { return d.s.Mean() }

// Percentile estimates the q-quantile, q in [0, 1].
func (d Distribution) Percentile(q float64) int64 { return d.s.Percentile(q) }

// Bucket is one non-empty log2 bucket of a Distribution: Count
// observations fell in the closed value interval [Lo, Hi].
type Bucket struct {
	Lo, Hi, Count int64
}

// Buckets returns the distribution's non-empty buckets in ascending value
// order — the raw histogram behind the percentile estimates, ready for
// plotting.
func (d Distribution) Buckets() []Bucket {
	var out []Bucket
	for i, c := range d.s.Buckets {
		if c == 0 {
			continue
		}
		lo, hi := hist.BucketBounds(i)
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}

// HotState is one state of the profiler's heat report: a single MFSA
// state, how often sampling found it active, its share of all sampled
// visits, and the rules whose compiled paths traverse it. A state shared
// by many rules that absorbs a large share is the signature of effective
// merging — or, with one dominant rule, of a pathological pattern.
type HotState struct {
	// Automaton is the MFSA index within the ruleset.
	Automaton int `json:"automaton"`
	// State is the state id within that MFSA.
	State int `json:"state"`
	// Visits counts sampling points at which the state was active.
	Visits int64 `json:"visits"`
	// Share is Visits over all states' visits, in [0, 1].
	Share float64 `json:"share"`
	// Rules lists the owning rule ids, ascending.
	Rules []int `json:"rules,omitempty"`
}

// ProfileReport is a point-in-time snapshot of the sampling profiler.
// Obtain one with Ruleset.Profile; it is immutable and safe to keep.
type ProfileReport struct {
	// Stride is the sampling stride in effect: state heat was sampled
	// once every Stride input bytes.
	Stride int
	// Samples counts sampling points across all scans so far.
	Samples int64
	// ScanLatency is the wall-clock latency distribution of block scans
	// (one observation per Scan/FindAll/Count/CountParallel call), in
	// nanoseconds.
	ScanLatency Distribution
	// ChunkLatency is the latency distribution of StreamMatcher.Write
	// calls, in nanoseconds.
	ChunkLatency Distribution
	// ActiveSet is the distribution of active (state, FSA) pairs at
	// sampling points — the engine's live working-set size.
	ActiveSet Distribution

	visits [][]int64 // per automaton, per state
	total  int64     // sum of all visits
	rs     *Ruleset
}

// TotalVisits returns the total sampled state-visit mass.
func (p *ProfileReport) TotalVisits() int64 { return p.total }

// Visits returns automaton a's per-state visit counts (the heat map the
// DOT rendering shades by). The slice is owned by the report; don't
// mutate it.
func (p *ProfileReport) Visits(a int) []int64 { return p.visits[a] }

// HotStates returns the k most-visited states across all automata,
// hottest first, with rule attribution. k ≤ 0 returns every visited
// state. Shares over the full (k ≤ 0) list sum to 1 up to rounding.
func (p *ProfileReport) HotStates(k int) []HotState {
	var out []HotState
	for a, vs := range p.visits {
		prog := p.rs.programs[a]
		for q, v := range vs {
			if v == 0 {
				continue
			}
			out = append(out, HotState{
				Automaton: a,
				State:     q,
				Visits:    v,
				Share:     float64(v) / float64(p.total),
				Rules:     prog.StateRules(q),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Visits != out[j].Visits {
			return out[i].Visits > out[j].Visits
		}
		if out[i].Automaton != out[j].Automaton {
			return out[i].Automaton < out[j].Automaton
		}
		return out[i].State < out[j].State
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// HotRules aggregates state heat up to rules: each state's visits are
// credited to every rule owning it, so shares measure how much automaton
// time each rule's paths absorb (shared states count for all sharers;
// shares can sum past 1 — that overlap is the merging win). The k
// heaviest rules are returned, heaviest first; k ≤ 0 returns all.
func (p *ProfileReport) HotRules(k int) []RuleHeat {
	acc := map[int]int64{}
	for a, vs := range p.visits {
		prog := p.rs.programs[a]
		for q, v := range vs {
			if v == 0 {
				continue
			}
			for _, id := range prog.StateRules(q) {
				acc[id] += v
			}
		}
	}
	out := make([]RuleHeat, 0, len(acc))
	for id, v := range acc {
		rh := RuleHeat{Rule: id, Visits: v, Share: float64(v) / float64(p.total)}
		if id >= 0 && id < len(p.rs.patterns) {
			rh.Pattern = p.rs.patterns[id]
		}
		out = append(out, rh)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Visits != out[j].Visits {
			return out[i].Visits > out[j].Visits
		}
		return out[i].Rule < out[j].Rule
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// RuleHeat is one rule's aggregated share of sampled automaton time.
type RuleHeat struct {
	Rule    int     `json:"rule"`
	Pattern string  `json:"pattern"`
	Visits  int64   `json:"visits"`
	Share   float64 `json:"share"`
}

// Profile returns a snapshot of the sampling profiler, or nil when the
// ruleset was compiled without Options.Profile. Safe for concurrent use
// with ongoing scans; the snapshot is internally consistent per counter.
func (rs *Ruleset) Profile() *ProfileReport {
	if rs.profiles == nil {
		return nil
	}
	p := &ProfileReport{
		Stride:       rs.profiles[0].Stride(),
		ScanLatency:  Distribution{rs.scanLat.Snapshot()},
		ChunkLatency: Distribution{rs.chunkLat.Snapshot()},
		rs:           rs,
	}
	var pairs hist.Snapshot
	p.visits = make([][]int64, len(rs.profiles))
	for i, pr := range rs.profiles {
		p.Samples += pr.Samples()
		pairs.Merge(pr.ActivePairs())
		p.visits[i] = pr.Visits()
		for _, v := range p.visits[i] {
			p.total += v
		}
	}
	p.ActiveSet = Distribution{pairs}
	return p
}

// WriteProfileDOT renders automaton a as a Graphviz digraph whose states
// are shaded white→red by their share of sampled visits — the heat map
// companion of Ruleset.WriteDOT. It fails when profiling is off or a is
// out of range.
func (rs *Ruleset) WriteProfileDOT(w io.Writer, a int) error {
	if rs.profiles == nil {
		return fmt.Errorf("imfant: profiling is off (Options.Profile)")
	}
	if a < 0 || a >= len(rs.mfsas) {
		return fmt.Errorf("imfant: automaton %d out of range [0, %d)", a, len(rs.mfsas))
	}
	return mfsa.WriteDOTHeat(w, rs.mfsas[a], rs.profiles[a].Visits())
}

// profileStats builds the Stats().Profile section from the live profiler
// state; installed on the collector by buildEngines.
func (rs *Ruleset) profileStats() *telemetry.ProfileStats {
	p := rs.Profile()
	if p == nil {
		return nil
	}
	ps := &telemetry.ProfileStats{Stride: p.Stride, Samples: p.Samples}
	if p.ScanLatency.Count() > 0 {
		ps.ScanLatencyNS = histStatsOf(p.ScanLatency)
	}
	if p.ChunkLatency.Count() > 0 {
		ps.ChunkLatencyNS = histStatsOf(p.ChunkLatency)
	}
	if p.ActiveSet.Count() > 0 {
		ps.ActivePairs = histStatsOf(p.ActiveSet)
	}
	for _, h := range p.HotStates(10) {
		ps.HotStates = append(ps.HotStates, telemetry.HotStateStats{
			Automaton: h.Automaton, State: h.State,
			Visits: h.Visits, Share: h.Share, Rules: h.Rules,
		})
	}
	return ps
}

// histStatsOf summarizes a distribution for the stats snapshot.
func histStatsOf(d Distribution) *telemetry.HistStats {
	return &telemetry.HistStats{
		Count: d.Count(),
		Mean:  d.Mean(),
		P50:   d.Percentile(0.50),
		P90:   d.Percentile(0.90),
		P99:   d.Percentile(0.99),
		Max:   d.Max(),
	}
}

// TraceEvent is one structured runtime event from the trace ring (see
// Options.TraceCapacity). Kind is the snake_case event name: scan_begin,
// scan_end, match, lazy_flush, lazy_fallback, lazy_pin, stream_end,
// prefilter_skip, scan_error, ruleset_swap, ruleset_drain. Fields not
// meaningful for a kind are -1.
type TraceEvent struct {
	// Seq is the event's global sequence number, starting at 1.
	Seq int64 `json:"seq"`
	// Nanos is the wall-clock timestamp in Unix nanoseconds.
	Nanos int64 `json:"t_ns"`
	// Kind is the event name.
	Kind string `json:"kind"`
	// Automaton is the MFSA index, -1 when the event spans all automata.
	Automaton int `json:"automaton"`
	// Rule is the rule id for match events, -1 otherwise.
	Rule int `json:"rule"`
	// Offset is the stream offset the event refers to, -1 when N/A.
	Offset int64 `json:"offset"`
	// Value is kind-specific: input length for scan_begin, match count
	// for scan_end/stream_end, flush count for lazy_flush, 1 for a
	// thrash-forced lazy_fallback (0 for pop-mode delegation), the
	// degradation-cause bitmask for scan_error (bit 0 timeout, bit 1
	// shed, bit 2 canceled, bit 3 worker panic), the sequence number that
	// became current for ruleset_swap, and the number of versions drained
	// for ruleset_drain.
	Value int64 `json:"value"`
}

// TraceEvents returns the retained trace events in chronological order;
// nil when tracing is off. Safe for concurrent use.
func (rs *Ruleset) TraceEvents() []TraceEvent {
	if rs.trace == nil {
		return nil
	}
	evs := rs.trace.Events()
	out := make([]TraceEvent, len(evs))
	for i, ev := range evs {
		out[i] = publicEvent(ev)
	}
	return out
}

// SetTraceSink installs fn to observe every trace event synchronously as
// it is recorded (nil removes it). The sink runs on the scanning
// goroutine — keep it fast. A no-op when tracing is off.
func (rs *Ruleset) SetTraceSink(fn func(TraceEvent)) {
	if rs.trace == nil {
		return
	}
	if fn == nil {
		rs.trace.SetSink(nil)
		return
	}
	rs.trace.SetSink(func(ev telemetry.Event) { fn(publicEvent(ev)) })
}

// publicEvent converts the internal event shape to the public mirror.
func publicEvent(ev telemetry.Event) TraceEvent {
	return TraceEvent{
		Seq:       ev.Seq,
		Nanos:     ev.Nanos,
		Kind:      ev.Kind.String(),
		Automaton: int(ev.Automaton),
		Rule:      int(ev.Rule),
		Offset:    ev.Offset,
		Value:     ev.Value,
	}
}
