package imfant

import (
	"reflect"
	"sort"
	"testing"
)

// distinct reduces matches to sorted distinct (rule, end) pairs, the form
// in which the two engines are guaranteed to agree.
func distinct(ms []Match) []Match {
	seen := map[[2]int]Match{}
	for _, m := range ms {
		seen[[2]int{m.Rule, m.End}] = m
	}
	out := make([]Match, 0, len(seen))
	for _, m := range seen {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

var enginePats = []string{"GET /a[bd]", "cmd\\.exe", "ab+c", "^GET", "exe$"}

const engineInput = "GET /ab cmd.exe abbbc GET /ad x.exe"

func TestEngineModesAgree(t *testing.T) {
	for _, keep := range []bool{false, true} {
		base := MustCompile(enginePats, Options{KeepOnMatch: keep, Engine: EngineIMFAnt})
		want := distinct(base.FindAll([]byte(engineInput)))
		for _, mode := range []EngineMode{EngineAuto, EngineLazyDFA} {
			rs := MustCompile(enginePats, Options{KeepOnMatch: keep, Engine: mode})
			got := distinct(rs.FindAll([]byte(engineInput)))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("keep=%v mode=%v: %v, want %v", keep, mode, got, want)
			}
			if c, bc := rs.Count([]byte(engineInput)), base.Count([]byte(engineInput)); c != bc {
				t.Fatalf("keep=%v mode=%v: count %d, want %d", keep, mode, c, bc)
			}
		}
	}
}

func TestScannerReuse(t *testing.T) {
	rs := MustCompile(enginePats, Options{KeepOnMatch: true, Engine: EngineLazyDFA})
	s := rs.NewScanner()
	first := s.Count([]byte(engineInput))
	if first == 0 {
		t.Fatal("no matches")
	}
	for i := 0; i < 3; i++ {
		if c := s.Count([]byte(engineInput)); c != first {
			t.Fatalf("reuse changed count: %d vs %d", c, first)
		}
	}
	if c := s.Count([]byte("nothing here")); c != 0 {
		t.Fatalf("state leaked across scans: %d", c)
	}
	per := s.CountPerRule([]byte(engineInput))
	var total int64
	for _, c := range per {
		total += c
	}
	if total != first {
		t.Fatalf("per-rule sum %d, want %d", total, first)
	}
}

func TestStreamMatcherLazyEqualsScan(t *testing.T) {
	for _, maxStates := range []int{0, 3} { // default and flush-forcing cap
		rs := MustCompile(enginePats, Options{
			KeepOnMatch: true, Engine: EngineLazyDFA, LazyDFAMaxStates: maxStates,
		})
		input := []byte(engineInput + " GET /ab cmd.exe")
		want := rs.FindAll(input)
		for _, chunk := range []int{1, 4, len(input)} {
			got := streamAll(rs, input, chunk)
			sortMatches(got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("maxStates=%d chunk=%d: %v, want %v", maxStates, chunk, got, want)
			}
		}
	}
}
