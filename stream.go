package imfant

import (
	"context"
	"io"

	"repro/internal/engine"
	"repro/internal/lazydfa"
)

// StreamMatcher scans a stream incrementally: write chunks of any size and
// matches are reported with absolute stream offsets, exactly as if the
// whole stream had been scanned at once (active MFSA paths carry across
// chunk boundaries). It implements io.WriteCloser, so it can sit behind
// io.Copy or a TeeReader in a packet-processing pipeline.
//
// The matcher runs on the engine selected by Options.Engine: in lazy-DFA
// mode each automaton keeps a bounded transition cache that persists for
// the life of the matcher, in iMFAnt mode the classic chunked runner.
//
// Close marks the end of the stream; it is required for correctness of
// $-anchored rules, which may only match on the final byte. To that end the
// matcher holds back the most recent byte until the next Write or Close.
//
// Matchers created with NewStreamMatcherContext stop at the first
// checkpoint after the context is cancelled: Write reports how many bytes
// were consumed before the cancellation and the context's error, and every
// later Write and Close returns the same sticky error (Err).
//
// A StreamMatcher is not safe for concurrent use.
type StreamMatcher struct {
	feeds   []func(chunk []byte, final bool)
	ends    []func()
	check   func() error // context poll; nil when not cancellable
	onMatch func(Match)
	held    [1]byte
	hasHeld bool
	closed  bool
	err     error // sticky: first checkpoint failure
	matches int64
}

// RuleInfo identifies one rule inside a stream matcher.
type RuleInfo struct {
	Rule    int
	Pattern string
}

// NewStreamMatcher returns a matcher over the ruleset. onMatch may be nil
// when only the count is needed.
func (rs *Ruleset) NewStreamMatcher(onMatch func(Match)) *StreamMatcher {
	return rs.NewStreamMatcherContext(context.Background(), onMatch)
}

// NewStreamMatcherContext returns a matcher whose Writes observe ctx:
// once the context is cancelled or its deadline passes, the stream fails
// with the context's error at the next checkpoint (about every 4 KiB),
// consuming no further input.
func (rs *Ruleset) NewStreamMatcherContext(ctx context.Context, onMatch func(Match)) *StreamMatcher {
	sm := &StreamMatcher{onMatch: onMatch, check: checkpointOf(ctx)}
	lazy := rs.useLazy()
	for i, p := range rs.programs {
		infos := make([]RuleInfo, 0, len(p.Rules()))
		for _, ri := range p.Rules() {
			infos = append(infos, RuleInfo{Rule: ri.RuleID, Pattern: ri.Pattern})
		}
		emit := func(fsa, end int) {
			sm.matches++
			if sm.onMatch != nil {
				info := infos[fsa]
				sm.onMatch(Match{Rule: info.Rule, Pattern: info.Pattern, End: end})
			}
		}
		if lazy {
			runner := lazydfa.NewRunner(rs.lazy[i])
			runner.Begin(lazydfa.Config{
				KeepOnMatch: rs.opts.KeepOnMatch,
				MaxStates:   rs.opts.LazyDFAMaxStates,
				OnMatch:     emit,
			})
			sm.feeds = append(sm.feeds, runner.Feed)
			sm.ends = append(sm.ends, func() { runner.End() })
		} else {
			runner := engine.NewRunner(p)
			runner.Begin(engine.Config{KeepOnMatch: rs.opts.KeepOnMatch, OnMatch: emit})
			sm.feeds = append(sm.feeds, runner.Feed)
			sm.ends = append(sm.ends, func() { runner.End() })
		}
	}
	return sm
}

// poll checks the matcher's context, recording the first failure.
func (sm *StreamMatcher) poll() error {
	if sm.check == nil || sm.err != nil {
		return sm.err
	}
	if err := sm.check(); err != nil {
		sm.err = err
	}
	return sm.err
}

// Write feeds the next chunk of the stream, honoring the io.Writer
// contract: it returns the number of bytes consumed, and a non-nil error
// whenever that is short of len(p). Write fails with io.ErrClosedPipe
// after Close, and with the sticky context error (see Err) after a
// cancellation; a failed matcher consumes nothing.
func (sm *StreamMatcher) Write(p []byte) (int, error) {
	if sm.err != nil {
		return 0, sm.err
	}
	if sm.closed {
		return 0, io.ErrClosedPipe
	}
	if len(p) == 0 {
		return 0, nil
	}
	if err := sm.poll(); err != nil {
		return 0, err
	}
	if sm.hasHeld {
		for _, feed := range sm.feeds {
			feed(sm.held[:], false)
		}
		sm.hasHeld = false
	}
	// Hold back the last byte: it becomes the stream end only if no
	// further data arrives before Close. The body is fed in checkpoint-
	// sized blocks so a cancelled context stops consuming input promptly
	// and the consumed-byte count stays exact.
	body, last := p[:len(p)-1], p[len(p)-1]
	n := 0
	for len(body) > 0 {
		blk := body
		if sm.check != nil && len(blk) > engine.DefaultCheckpointEvery {
			blk = blk[:engine.DefaultCheckpointEvery]
		}
		for _, feed := range sm.feeds {
			feed(blk, false)
		}
		body = body[len(blk):]
		n += len(blk)
		if len(body) > 0 {
			if err := sm.poll(); err != nil {
				return n, err
			}
		}
	}
	sm.held[0] = last
	sm.hasHeld = true
	return n + 1, nil
}

// Close marks the stream end, flushing the held byte as the final one.
// Close is idempotent; a second Close returns nil. On a matcher that
// already failed (cancelled context), Close skips the final flush — the
// stream end was never observed — and returns the sticky error.
func (sm *StreamMatcher) Close() error {
	if sm.err != nil {
		sm.closed = true
		return sm.err
	}
	if sm.closed {
		return nil
	}
	sm.closed = true
	var final []byte
	if sm.hasHeld {
		final = sm.held[:]
		sm.hasHeld = false
	}
	for i, feed := range sm.feeds {
		feed(final, true)
		sm.ends[i]()
	}
	return nil
}

// Err returns the sticky error that failed the stream, if any: the
// context's error once a cancellation was observed. A closed, healthy
// matcher reports nil.
func (sm *StreamMatcher) Err() error { return sm.err }

// Matches returns the number of match events reported so far. After Close
// it is the total for the stream.
func (sm *StreamMatcher) Matches() int64 { return sm.matches }
