package imfant

import (
	"repro/internal/engine"
	"repro/internal/lazydfa"
)

// StreamMatcher scans a stream incrementally: write chunks of any size and
// matches are reported with absolute stream offsets, exactly as if the
// whole stream had been scanned at once (active MFSA paths carry across
// chunk boundaries). It implements io.WriteCloser, so it can sit behind
// io.Copy or a TeeReader in a packet-processing pipeline.
//
// The matcher runs on the engine selected by Options.Engine: in lazy-DFA
// mode each automaton keeps a bounded transition cache that persists for
// the life of the matcher, in iMFAnt mode the classic chunked runner.
//
// Close marks the end of the stream; it is required for correctness of
// $-anchored rules, which may only match on the final byte. To that end the
// matcher holds back the most recent byte until the next Write or Close.
//
// A StreamMatcher is not safe for concurrent use.
type StreamMatcher struct {
	feeds   []func(chunk []byte, final bool)
	ends    []func()
	onMatch func(Match)
	held    [1]byte
	hasHeld bool
	closed  bool
	matches int64
}

// RuleInfo identifies one rule inside a stream matcher.
type RuleInfo struct {
	Rule    int
	Pattern string
}

// NewStreamMatcher returns a matcher over the ruleset. onMatch may be nil
// when only the count is needed.
func (rs *Ruleset) NewStreamMatcher(onMatch func(Match)) *StreamMatcher {
	sm := &StreamMatcher{onMatch: onMatch}
	lazy := rs.useLazy()
	for i, p := range rs.programs {
		infos := make([]RuleInfo, 0, len(p.Rules()))
		for _, ri := range p.Rules() {
			infos = append(infos, RuleInfo{Rule: ri.RuleID, Pattern: ri.Pattern})
		}
		emit := func(fsa, end int) {
			sm.matches++
			if sm.onMatch != nil {
				info := infos[fsa]
				sm.onMatch(Match{Rule: info.Rule, Pattern: info.Pattern, End: end})
			}
		}
		if lazy {
			runner := lazydfa.NewRunner(rs.lazy[i])
			runner.Begin(lazydfa.Config{
				KeepOnMatch: rs.opts.KeepOnMatch,
				MaxStates:   rs.opts.LazyDFAMaxStates,
				OnMatch:     emit,
			})
			sm.feeds = append(sm.feeds, runner.Feed)
			sm.ends = append(sm.ends, func() { runner.End() })
		} else {
			runner := engine.NewRunner(p)
			runner.Begin(engine.Config{KeepOnMatch: rs.opts.KeepOnMatch, OnMatch: emit})
			sm.feeds = append(sm.feeds, runner.Feed)
			sm.ends = append(sm.ends, func() { runner.End() })
		}
	}
	return sm
}

// Write feeds the next chunk of the stream. It never fails; the error is
// always nil (the signature satisfies io.Writer).
func (sm *StreamMatcher) Write(p []byte) (int, error) {
	if sm.closed || len(p) == 0 {
		return len(p), nil
	}
	if sm.hasHeld {
		for _, feed := range sm.feeds {
			feed(sm.held[:], false)
		}
		sm.hasHeld = false
	}
	// Hold back the last byte: it becomes the stream end only if no
	// further data arrives before Close.
	body, last := p[:len(p)-1], p[len(p)-1]
	if len(body) > 0 {
		for _, feed := range sm.feeds {
			feed(body, false)
		}
	}
	sm.held[0] = last
	sm.hasHeld = true
	return len(p), nil
}

// Close marks the stream end, flushing the held byte as the final one.
// Further Writes are ignored. Close is idempotent.
func (sm *StreamMatcher) Close() error {
	if sm.closed {
		return nil
	}
	sm.closed = true
	var final []byte
	if sm.hasHeld {
		final = sm.held[:]
		sm.hasHeld = false
	}
	for i, feed := range sm.feeds {
		feed(final, true)
		sm.ends[i]()
	}
	return nil
}

// Matches returns the number of match events reported so far. After Close
// it is the total for the stream.
func (sm *StreamMatcher) Matches() int64 { return sm.matches }
