package imfant

import (
	"context"
	"errors"
	"io"
	"sync"
	"time"

	"repro/internal/ahocorasick"
	"repro/internal/engine"
	"repro/internal/faultpoint"
	"repro/internal/lazydfa"
	"repro/internal/telemetry"
)

// StreamMatcher scans a stream incrementally: write chunks of any size and
// matches are reported with absolute stream offsets, exactly as if the
// whole stream had been scanned at once (active MFSA paths carry across
// chunk boundaries). It implements io.WriteCloser, so it can sit behind
// io.Copy or a TeeReader in a packet-processing pipeline.
//
// The matcher runs on the engine selected by Options.Engine: in lazy-DFA
// mode each automaton keeps a bounded transition cache that persists for
// the life of the matcher, in iMFAnt mode the classic chunked runner.
//
// Close marks the end of the stream; it is required for correctness of
// $-anchored rules, which may only match on the final byte. The runners
// hold back the most recent byte until the next Write or Close so that the
// stream end can be announced after the fact; every byte Write reports as
// consumed has been handed to the engines, and is matched against even if
// the stream is cancelled or closed after an error ($-anchored accepts do
// not fire in that case — the true stream end was never observed).
//
// Matchers created with NewStreamMatcherContext stop at the first
// checkpoint after the context is cancelled: Write reports how many bytes
// were consumed before the cancellation and the context's error, and every
// later Write and Close returns the same sticky error (Err).
//
// On rulesets whose literal-factor prefilter is active (Options.Prefilter)
// the stream stays exact while still skipping work: fully filterable
// automata start gated. The first Write is swept for factors before any
// byte is fed, so a gated automaton whose factor occurs activates with zero
// bytes consumed — exactly as if it had never been gated. An automaton
// still gated when a second Write arrives cannot be activated lazily any
// more (a match could start before its factor's first occurrence), so it
// wakes by replaying the buffered first chunk and the prefilter retires for
// the rest of the stream; matches from that replay are reported during the
// later Write. An automaton still gated at Close is skipped outright, which
// is sound: its rules each require a factor that never occurred anywhere in
// the stream. The streamed match set is byte-identical to the unfiltered
// one in every case; the savings concentrate on single-Write streams.
//
// Write, Close, Err, and Matches serialize on an internal mutex, pinning
// the Close-during-concurrent-Write contract: a Write racing Close either
// completes in full — every one of its matches delivered before Close
// returns — or loses the race, consumes nothing, and fails with the sticky
// io.ErrClosedPipe. No partial-match loss, no torn chunks. Concurrent
// Writes are likewise serialized (their relative order is unspecified), and
// onMatch runs under the lock — it must not call back into the matcher.
// Stats remains single-owner: call it only with Writes quiesced.
type StreamMatcher struct {
	mu       sync.Mutex // serializes Write/Close/Err/Matches
	rs       *Ruleset
	engines  []*engine.Runner  // iMFAnt mode
	lazies   []*lazydfa.Runner // lazy-DFA mode
	check    func() error      // context poll; nil when not cancellable
	onMatch  func(Match)
	closed   bool
	err      error // sticky: first checkpoint failure
	matches  int64
	consumed int64 // bytes consumed across Writes
	ruleHits []int64
	budget   time.Duration // Options.ScanTimeout: per-Write/Close time budget
	deadline time.Time     // current call's cutoff; zero without a budget
	timeouts int64         // 1 once the stream failed with ErrScanTimeout
	faults   *faultpoint.Injector
	onClose  func() // registry drain hook; runs once, after a Close completes

	// Prefilter state; inert when the ruleset is ungated.
	sweep      *ahocorasick.Sweeper
	gated      []bool // per automaton: skipped until its factor occurs
	gatedCount int
	pending    []byte // first chunk, buffered while any automaton is gated
	wrote      bool   // a Write has consumed bytes
	pref       prefCounters
}

// RuleInfo identifies one rule inside a stream matcher.
type RuleInfo struct {
	Rule    int
	Pattern string
}

// NewStreamMatcher returns a matcher over the ruleset. onMatch may be nil
// when only the count is needed.
func (rs *Ruleset) NewStreamMatcher(onMatch func(Match)) *StreamMatcher {
	return rs.NewStreamMatcherContext(context.Background(), onMatch)
}

// NewStreamMatcherContext returns a matcher whose Writes observe ctx:
// once the context is cancelled or its deadline passes, the stream fails
// with the context's error at the next checkpoint (about every 4 KiB),
// consuming no further input.
func (rs *Ruleset) NewStreamMatcherContext(ctx context.Context, onMatch func(Match)) *StreamMatcher {
	sm := &StreamMatcher{
		rs:       rs,
		onMatch:  onMatch,
		check:    checkpointOf(ctx),
		ruleHits: make([]int64, len(rs.patterns)),
		budget:   rs.opts.ScanTimeout,
		faults:   rs.faults,
	}
	lazy := rs.useLazy()
	for i, p := range rs.programs {
		infos := make([]RuleInfo, 0, len(p.Rules()))
		for _, ri := range p.Rules() {
			infos = append(infos, RuleInfo{Rule: ri.RuleID, Pattern: ri.Pattern})
		}
		emit := func(fsa, end int) {
			sm.matches++
			info := infos[fsa]
			if info.Rule >= 0 && info.Rule < len(sm.ruleHits) {
				sm.ruleHits[info.Rule]++
			}
			if sm.onMatch != nil {
				sm.onMatch(Match{Rule: info.Rule, Pattern: info.Pattern, End: end})
			}
		}
		if lazy {
			runner := lazydfa.NewRunner(rs.lazy[i])
			runner.Begin(lazydfa.Config{
				KeepOnMatch: rs.opts.KeepOnMatch,
				MaxStates:   rs.opts.LazyDFAMaxStates,
				OnMatch:     emit,
				Accel:       rs.opts.accelOn(),
				Profile:     rs.profileOf(i),
				ThrashRetry: rs.opts.thrashRetryOn(),
				Faults:      sm.faults,
			})
			sm.lazies = append(sm.lazies, runner)
		} else {
			runner := engine.NewRunner(p)
			runner.Begin(engine.Config{
				KeepOnMatch: rs.opts.KeepOnMatch,
				OnMatch:     emit,
				Accel:       rs.opts.accelOn(),
				Profile:     rs.profileOf(i),
				Faults:      sm.faults,
			})
			sm.engines = append(sm.engines, runner)
		}
	}
	if pf := rs.pf; pf != nil {
		sm.gated = make([]bool, len(rs.programs))
		for i := range sm.gated {
			if !pf.groupAlways[i] {
				sm.gated[i] = true
				sm.gatedCount++
			}
		}
		if sm.gatedCount > 0 {
			sm.sweep = pf.ac.NewSweeper()
			sm.sweep.SetAccel(rs.opts.accelOn())
		}
	}
	return sm
}

// isGated reports whether automaton i is currently skipped by the
// prefilter.
func (sm *StreamMatcher) isGated(i int) bool {
	return sm.gated != nil && sm.gated[i]
}

// feed hands one chunk to every active automaton; gated ones stay idle.
func (sm *StreamMatcher) feed(chunk []byte, final bool) {
	for i, r := range sm.engines {
		if !sm.isGated(i) {
			r.Feed(chunk, final)
		}
	}
	for i, r := range sm.lazies {
		if !sm.isGated(i) {
			r.Feed(chunk, final)
		}
	}
}

// feedOne hands one chunk to automaton i only (first-chunk replay when a
// gated automaton wakes mid-stream).
func (sm *StreamMatcher) feedOne(i int, chunk []byte) {
	if sm.engines != nil {
		sm.engines[i].Feed(chunk, false)
	} else {
		sm.lazies[i].Feed(chunk, false)
	}
}

// prefilterAdmit advances the gating state for an incoming chunk, before
// any of it is fed. A no-op once nothing is gated.
func (sm *StreamMatcher) prefilterAdmit(p []byte) error {
	if sm.gatedCount == 0 {
		return nil
	}
	if sm.faults.Hit(faultpoint.PrefilterWake) && !sm.wrote {
		// Injected sweeper desync: wake everything before the first byte is
		// fed. Waking before any byte is consumed is exactly the ungated
		// start path, so it is always sound.
		for i := range sm.gated {
			if sm.gated[i] {
				sm.gated[i] = false
				sm.gatedCount--
			}
		}
		return nil
	}
	pf := sm.rs.pf
	if !sm.wrote {
		// First chunk: sweep before feeding, so a factor-triggered
		// automaton activates with zero bytes consumed and runs the stream
		// from its first byte like an ungated one.
		for off := 0; off < len(p) && !sm.sweep.Done(); off += engine.DefaultCheckpointEvery {
			if err := sm.poll(); err != nil {
				return err
			}
			end := off + engine.DefaultCheckpointEvery
			if end > len(p) {
				end = len(p)
			}
			sm.sweep.Sweep(p[off:end])
		}
		sm.pref.sweeps = 1
		sm.pref.hits = int64(sm.sweep.Seen())
		for i := range sm.gated {
			if sm.gated[i] && pf.active(i, sm.sweep) {
				sm.gated[i] = false
				sm.gatedCount--
			}
		}
		if sm.gatedCount > 0 {
			sm.pending = append([]byte(nil), p...)
		}
		return nil
	}
	// A later chunk arrived with automata still gated. Activating one
	// mid-stream cannot be exact — a match may start before the factor's
	// first occurrence — so every gated automaton wakes by replaying the
	// buffered first chunk, and the prefilter retires for this stream.
	for i := range sm.gated {
		if !sm.gated[i] {
			continue
		}
		pending := sm.pending
		for len(pending) > 0 {
			if err := sm.poll(); err != nil {
				return err
			}
			blk := pending
			if sm.splitChunks() && len(blk) > engine.DefaultCheckpointEvery {
				blk = blk[:engine.DefaultCheckpointEvery]
			}
			sm.feedOne(i, blk)
			pending = pending[len(blk):]
		}
		sm.gated[i] = false
		sm.gatedCount--
	}
	sm.pending = nil
	return nil
}

// flushHeld feeds each runner's held-back byte as ordinary data, so that
// every byte reported as consumed has been matched against even though the
// stream will never see a proper end.
func (sm *StreamMatcher) flushHeld() {
	for _, r := range sm.engines {
		r.FlushHeld()
	}
	for _, r := range sm.lazies {
		r.FlushHeld()
	}
}

// armDeadline starts the current call's ScanTimeout budget; a no-op when
// Options.ScanTimeout is zero.
func (sm *StreamMatcher) armDeadline() {
	if sm.budget > 0 {
		sm.deadline = time.Now().Add(sm.budget)
	}
}

// splitChunks reports whether Writes must be fed in checkpoint-sized blocks:
// required whenever poll can fail mid-chunk — a cancellable context or an
// armed ScanTimeout budget — so the failure is observed promptly and the
// consumed-byte count stays exact.
func (sm *StreamMatcher) splitChunks() bool { return sm.check != nil || sm.budget > 0 }

// poll checks the matcher's context and the armed ScanTimeout deadline,
// recording the first failure (the context's error takes precedence). On
// that first failure the runners' held bytes are flushed: the consumed-byte
// count already includes them, so they must be matched against. A deadline
// failure is sticky like a cancellation — the stream is wedged slow, and
// retrying the next Write against the same backlog would just burn another
// budget.
func (sm *StreamMatcher) poll() error {
	if sm.err != nil {
		return sm.err
	}
	var err error
	if sm.check != nil {
		err = sm.check()
	}
	if err == nil && !sm.deadline.IsZero() && time.Now().After(sm.deadline) {
		err = ErrScanTimeout
	}
	if err != nil {
		sm.err = err
		if errors.Is(err, ErrScanTimeout) {
			sm.timeouts++
		}
		noteDegraded(sm.rs.collector, err)
		sm.flushHeld()
	}
	return sm.err
}

// Write feeds the next chunk of the stream, honoring the io.Writer
// contract: it returns the number of bytes consumed — every one of them
// handed to the engines — and a non-nil error whenever that is short of
// len(p). Write fails with io.ErrClosedPipe after Close, and with the
// sticky context error (see Err) after a cancellation; a failed matcher
// consumes nothing.
func (sm *StreamMatcher) Write(p []byte) (int, error) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if sm.err != nil {
		return 0, sm.err
	}
	if sm.closed {
		return 0, io.ErrClosedPipe
	}
	if len(p) == 0 {
		return 0, nil
	}
	sm.armDeadline()
	if err := sm.poll(); err != nil {
		return 0, err
	}
	if sm.rs.chunkLat != nil {
		defer func(t0 time.Time) { sm.rs.chunkLat.Record(time.Since(t0).Nanoseconds()) }(time.Now())
	}
	if err := sm.prefilterAdmit(p); err != nil {
		return 0, err
	}
	// The chunk is fed in checkpoint-sized blocks so a cancelled context
	// stops consuming input promptly and the consumed-byte count stays
	// exact. The runners themselves hold back the most recent byte until
	// the stream end is known; it still counts as consumed because a
	// cancellation flushes it (see poll).
	n := 0
	for len(p) > 0 {
		blk := p
		if sm.splitChunks() && len(blk) > engine.DefaultCheckpointEvery {
			blk = blk[:engine.DefaultCheckpointEvery]
		}
		sm.feed(blk, false)
		p = p[len(blk):]
		n += len(blk)
		sm.consumed += int64(len(blk))
		if len(p) > 0 {
			if err := sm.poll(); err != nil {
				sm.wrote = true
				return n, err
			}
		}
	}
	sm.wrote = true
	return n, nil
}

// Close marks the stream end, flushing the runners' held bytes as final.
// Close is idempotent; a second Close returns the same result. Close is
// itself a checkpoint: on a matcher that failed — or whose context is found
// cancelled at Close — the final flush is skipped (the stream end was never
// observed, so $-anchored accepts must not fire), the held bytes are
// matched against as ordinary data, and the sticky error is returned.
func (sm *StreamMatcher) Close() error {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if sm.closed {
		return sm.err
	}
	sm.closed = true
	sm.armDeadline()
	if sm.poll() == nil {
		sm.feed(nil, true)
	}
	for i, r := range sm.engines {
		if !sm.isGated(i) {
			r.End()
		}
	}
	for i, r := range sm.lazies {
		if !sm.isGated(i) {
			r.End()
		}
	}
	// Automata still gated here are skipped for good: each of their rules
	// requires a factor that never occurred in the stream.
	if sm.gatedCount > 0 {
		sm.pref.skipped = int64(sm.gatedCount)
		sm.pref.saved = int64(sm.gatedCount) * sm.consumed
		if sm.rs.trace != nil {
			for i := range sm.gated {
				if sm.gated[i] {
					sm.rs.trace.Record(telemetry.Event{Kind: telemetry.EventPrefilterSkip,
						Automaton: int32(i), Rule: -1, Offset: -1, Value: sm.consumed})
				}
			}
		}
	}
	sm.pushTelemetry()
	if sm.rs.trace != nil {
		sm.rs.trace.Record(telemetry.Event{Kind: telemetry.EventStreamEnd,
			Automaton: -1, Rule: -1, Offset: sm.consumed, Value: sm.matches})
	}
	if sm.onClose != nil {
		sm.onClose()
		sm.onClose = nil
	}
	return sm.err
}

// pushTelemetry folds the closed stream's counters into the ruleset-wide
// collector. Runs once, at Close — never on the byte path.
func (sm *StreamMatcher) pushTelemetry() {
	c := sm.rs.collector
	for i, r := range sm.engines {
		if sm.isGated(i) {
			continue
		}
		t := r.Totals()
		c.AddScans(t.Scans)
		c.AddBytes(t.Symbols)
		c.AddMatches(t.Matches)
		c.AddAccelScan(t.AccelBytes)
	}
	for i, r := range sm.lazies {
		if sm.isGated(i) {
			continue
		}
		t := r.Totals()
		c.AddScans(t.Scans)
		c.AddBytes(t.Symbols)
		c.AddMatches(t.Matches)
		c.AddLazyScan(t.CacheHits, t.CacheMisses, t.Flushes, t.Fallbacks)
		if t.Grows != 0 || t.Pins != 0 {
			c.AddLazyDegraded(t.Grows, t.Pins)
		}
		c.SetCachedStates(i, int64(r.CachedStates()))
		c.AddAccelScan(t.AccelBytes)
		c.SetAccelStates(i, int64(r.AccelStates()))
	}
	if sm.sweep != nil {
		c.AddPrefilterScan(sm.pref.sweeps, sm.pref.hits, sm.pref.skipped, sm.pref.saved)
	}
	for id, n := range sm.ruleHits {
		if n != 0 {
			c.AddRuleHits(id, n)
		}
	}
}

// Err returns the sticky error that failed the stream, if any: the
// context's error once a cancellation was observed, or ErrScanTimeout once
// a Write overran Options.ScanTimeout. A closed, healthy matcher reports
// nil.
func (sm *StreamMatcher) Err() error {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.err
}

// Matches returns the number of match events reported so far. After Close
// it is the total for the stream.
func (sm *StreamMatcher) Matches() int64 {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.matches
}
