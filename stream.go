package imfant

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"time"

	"repro/internal/ahocorasick"
	"repro/internal/dfa"
	"repro/internal/engine"
	"repro/internal/faultpoint"
	"repro/internal/lazydfa"
	"repro/internal/telemetry"
)

// StreamMatcher scans a stream incrementally: write chunks of any size and
// matches are reported with absolute stream offsets, exactly as if the
// whole stream had been scanned at once (active MFSA paths carry across
// chunk boundaries). It implements io.WriteCloser, so it can sit behind
// io.Copy or a TeeReader in a packet-processing pipeline.
//
// The matcher runs on the engine selected by Options.Engine: in lazy-DFA
// mode each automaton keeps a bounded transition cache that persists for
// the life of the matcher, in iMFAnt mode the classic chunked runner.
//
// Close marks the end of the stream; it is required for correctness of
// $-anchored rules, which may only match on the final byte. The runners
// hold back the most recent byte until the next Write or Close so that the
// stream end can be announced after the fact; every byte Write reports as
// consumed has been handed to the engines, and is matched against even if
// the stream is cancelled or closed after an error ($-anchored accepts do
// not fire in that case — the true stream end was never observed).
//
// Matchers created with NewStreamMatcherContext stop at the first
// checkpoint after the context is cancelled: Write reports how many bytes
// were consumed before the cancellation and the context's error, and every
// later Write and Close returns the same sticky error (Err).
//
// On rulesets whose literal-factor prefilter is active (Options.Prefilter)
// the stream stays exact while still skipping work: fully filterable
// automata start gated. The first Write is swept for factors before any
// byte is fed, so a gated automaton whose factor occurs activates with zero
// bytes consumed — exactly as if it had never been gated. An automaton
// still gated when a second Write arrives cannot be activated lazily any
// more (a match could start before its factor's first occurrence), so it
// wakes by replaying the buffered first chunk and the prefilter retires for
// the rest of the stream; matches from that replay are reported during the
// later Write. An automaton still gated at Close is skipped outright, which
// is sound: its rules each require a factor that never occurred anywhere in
// the stream. The streamed match set is byte-identical to the unfiltered
// one in every case; the savings concentrate on single-Write streams.
//
// Write, Close, Err, and Matches serialize on an internal mutex, pinning
// the Close-during-concurrent-Write contract: a Write racing Close either
// completes in full — every one of its matches delivered before Close
// returns — or loses the race, consumes nothing, and fails with the sticky
// io.ErrClosedPipe. No partial-match loss, no torn chunks. Concurrent
// Writes are likewise serialized (their relative order is unspecified), and
// onMatch runs under the lock — it must not call back into the matcher.
// Stats remains single-owner: call it only with Writes quiesced.
type StreamMatcher struct {
	mu sync.Mutex // serializes Write/Close/Err/Matches
	rs *Ruleset
	// Per-automaton runners, indexed like rs.programs; exactly one entry is
	// non-nil per automaton, selected by the plan's strategy for the group.
	engines  []*engine.Runner             // StrategyIMFAnt groups
	lazies   []*lazydfa.Runner            // StrategyLazyDFA groups
	acRuns   []*ahocorasick.StreamScanner // StrategyAC groups
	dfaRuns  []*dfa.Runner                // StrategyDFA groups
	anchRuns []*anchStream                // StrategyAnchored groups
	// Per-automaton match counts and — for AC groups — distinct-literal
	// tracking (the group's factor-sweep hit count at Close).
	groupMatches []int64
	acSeen       [][]bool
	acDistinct   []int
	acEmit       []func(fsa, end int)
	check        func() error // context poll; nil when not cancellable
	onMatch      func(Match)
	closed       bool
	err          error // sticky: first checkpoint failure
	matches      int64
	consumed     int64 // bytes consumed across Writes
	ruleHits     []int64
	budget       time.Duration // Options.ScanTimeout: per-Write/Close time budget
	deadline     time.Time     // current call's cutoff; zero without a budget
	timeouts     int64         // 1 once the stream failed with ErrScanTimeout
	faults       *faultpoint.Injector
	onClose      func() // registry drain hook; runs once, after a Close completes

	// Prefilter state; inert when the ruleset is ungated.
	sweep      *ahocorasick.Sweeper
	gated      []bool // per automaton: skipped until its factor occurs
	gatedCount int
	pending    []byte // first chunk, buffered while any automaton is gated
	wrote      bool   // a Write has consumed bytes
	pref       prefCounters
}

// RuleInfo identifies one rule inside a stream matcher.
type RuleInfo struct {
	Rule    int
	Pattern string
}

// NewStreamMatcher returns a matcher over the ruleset. onMatch may be nil
// when only the count is needed.
func (rs *Ruleset) NewStreamMatcher(onMatch func(Match)) *StreamMatcher {
	return rs.NewStreamMatcherContext(context.Background(), onMatch)
}

// NewStreamMatcherContext returns a matcher whose Writes observe ctx:
// once the context is cancelled or its deadline passes, the stream fails
// with the context's error at the next checkpoint (about every 4 KiB),
// consuming no further input.
func (rs *Ruleset) NewStreamMatcherContext(ctx context.Context, onMatch func(Match)) *StreamMatcher {
	sm := &StreamMatcher{
		rs:       rs,
		onMatch:  onMatch,
		check:    checkpointOf(ctx),
		ruleHits: make([]int64, len(rs.patterns)),
		budget:   rs.opts.ScanTimeout,
		faults:   rs.faults,
	}
	n := len(rs.programs)
	sm.engines = make([]*engine.Runner, n)
	sm.lazies = make([]*lazydfa.Runner, n)
	sm.acRuns = make([]*ahocorasick.StreamScanner, n)
	sm.dfaRuns = make([]*dfa.Runner, n)
	sm.anchRuns = make([]*anchStream, n)
	sm.groupMatches = make([]int64, n)
	sm.acSeen = make([][]bool, n)
	sm.acDistinct = make([]int, n)
	sm.acEmit = make([]func(fsa, end int), n)
	for i, p := range rs.programs {
		infos := make([]RuleInfo, 0, len(p.Rules()))
		for _, ri := range p.Rules() {
			infos = append(infos, RuleInfo{Rule: ri.RuleID, Pattern: ri.Pattern})
		}
		group := i
		emit := func(fsa, end int) {
			sm.matches++
			sm.groupMatches[group]++
			info := infos[fsa]
			if info.Rule >= 0 && info.Rule < len(sm.ruleHits) {
				sm.ruleHits[info.Rule]++
			}
			if sm.onMatch != nil {
				sm.onMatch(Match{Rule: info.Rule, Pattern: info.Pattern, End: end})
			}
		}
		switch rs.plan.strat[i] {
		case StrategyLazyDFA:
			runner := lazydfa.NewRunner(rs.lazy[i])
			runner.Begin(lazydfa.Config{
				KeepOnMatch: rs.opts.KeepOnMatch,
				MaxStates:   rs.opts.LazyDFAMaxStates,
				OnMatch:     emit,
				Accel:       rs.opts.accelOn(),
				Profile:     rs.profileOf(i),
				ThrashRetry: rs.opts.thrashRetryOn(),
				Faults:      sm.faults,
			})
			sm.lazies[i] = runner
		case StrategyAC:
			sc := rs.plan.ac[i].m.NewStreamScanner()
			sc.SetAccel(rs.opts.accelOn())
			sm.acRuns[i] = sc
			sm.acSeen[i] = make([]bool, rs.plan.ac[i].rules)
			sm.acEmit[i] = emit
		case StrategyAnchored:
			sm.anchRuns[i] = newAnchStream(rs.plan.anch[i], emit)
		case StrategyDFA:
			runner := dfa.NewRunner(rs.plan.dfas[i])
			runner.Begin(dfa.Config{OnMatch: emit, Faults: sm.faults})
			sm.dfaRuns[i] = runner
		default:
			runner := engine.NewRunner(p)
			runner.Begin(engine.Config{
				KeepOnMatch: rs.opts.KeepOnMatch,
				OnMatch:     emit,
				Accel:       rs.opts.accelOn(),
				Profile:     rs.profileOf(i),
				Faults:      sm.faults,
			})
			sm.engines[i] = runner
		}
	}
	if pf := rs.pf; pf != nil {
		sm.gated = make([]bool, len(rs.programs))
		for i := range sm.gated {
			if !pf.groupAlways[i] {
				sm.gated[i] = true
				sm.gatedCount++
			}
		}
		if sm.gatedCount > 0 {
			sm.sweep = pf.ac.NewSweeper()
			sm.sweep.SetAccel(rs.opts.accelOn())
		}
	}
	return sm
}

// isGated reports whether automaton i is currently skipped by the
// prefilter.
func (sm *StreamMatcher) isGated(i int) bool {
	return sm.gated != nil && sm.gated[i]
}

// feed hands one chunk to every active automaton; gated ones stay idle.
// The AC and anchored runners report chunk-relative positions, so they get
// the chunk's absolute base offset too.
func (sm *StreamMatcher) feed(chunk []byte, final bool) {
	base := sm.consumed
	for i := range sm.rs.programs {
		if sm.isGated(i) {
			continue
		}
		switch {
		case sm.engines[i] != nil:
			sm.engines[i].Feed(chunk, final)
		case sm.lazies[i] != nil:
			sm.lazies[i].Feed(chunk, final)
		case sm.acRuns[i] != nil:
			if len(chunk) > 0 {
				// The strategy runners without their own fault plumbing arm
				// the chunk-stall site here, so the injected-wedge robustness
				// contract (a stalled Write is cut by ScanTimeout) holds on
				// every strategy, not just the engine-backed ones.
				sm.faults.Stall()
				sm.feedAC(i, base, chunk)
			}
		case sm.dfaRuns[i] != nil:
			if len(chunk) > 0 {
				sm.dfaRuns[i].Feed(chunk)
			}
		case sm.anchRuns[i] != nil:
			if len(chunk) > 0 {
				sm.faults.Stall()
				sm.anchRuns[i].feed(base, chunk)
			}
			if final {
				// The clean stream end: `$` is observable now, and only now.
				sm.anchRuns[i].finish()
			}
		}
	}
}

// feedAC advances AC group i over one chunk, translating match ends to
// absolute stream offsets and tracking distinct member literals seen (the
// group's factor-sweep hit count).
func (sm *StreamMatcher) feedAC(i int, base int64, chunk []byte) {
	emit := sm.acEmit[i]
	seen := sm.acSeen[i]
	sm.acRuns[i].Scan(chunk, func(pat, e int) {
		if !seen[pat] {
			seen[pat] = true
			sm.acDistinct[i]++
		}
		emit(pat, int(base)+e)
	})
}

// feedOne hands one chunk to automaton i only (first-chunk replay when a
// gated automaton wakes mid-stream). Only gatable groups — default-engine
// and eager-DFA — can be gated, so only their runners appear here.
func (sm *StreamMatcher) feedOne(i int, chunk []byte) {
	switch {
	case sm.engines[i] != nil:
		sm.engines[i].Feed(chunk, false)
	case sm.lazies[i] != nil:
		sm.lazies[i].Feed(chunk, false)
	case sm.dfaRuns[i] != nil:
		sm.dfaRuns[i].Feed(chunk)
	}
}

// prefilterAdmit advances the gating state for an incoming chunk, before
// any of it is fed. A no-op once nothing is gated.
func (sm *StreamMatcher) prefilterAdmit(p []byte) error {
	if sm.gatedCount == 0 {
		return nil
	}
	if sm.faults.Hit(faultpoint.PrefilterWake) && !sm.wrote {
		// Injected sweeper desync: wake everything before the first byte is
		// fed. Waking before any byte is consumed is exactly the ungated
		// start path, so it is always sound.
		for i := range sm.gated {
			if sm.gated[i] {
				sm.gated[i] = false
				sm.gatedCount--
			}
		}
		return nil
	}
	pf := sm.rs.pf
	if !sm.wrote {
		// First chunk: sweep before feeding, so a factor-triggered
		// automaton activates with zero bytes consumed and runs the stream
		// from its first byte like an ungated one.
		for off := 0; off < len(p) && !sm.sweep.Done(); off += engine.DefaultCheckpointEvery {
			if err := sm.poll(); err != nil {
				return err
			}
			end := off + engine.DefaultCheckpointEvery
			if end > len(p) {
				end = len(p)
			}
			sm.sweep.Sweep(p[off:end])
		}
		sm.pref.sweeps = 1
		sm.pref.hits = int64(sm.sweep.Seen())
		for i := range sm.gated {
			if sm.gated[i] && pf.active(i, sm.sweep) {
				sm.gated[i] = false
				sm.gatedCount--
			}
		}
		if sm.gatedCount > 0 {
			sm.pending = append([]byte(nil), p...)
		}
		return nil
	}
	// A later chunk arrived with automata still gated. Activating one
	// mid-stream cannot be exact — a match may start before the factor's
	// first occurrence — so every gated automaton wakes by replaying the
	// buffered first chunk, and the prefilter retires for this stream.
	for i := range sm.gated {
		if !sm.gated[i] {
			continue
		}
		pending := sm.pending
		for len(pending) > 0 {
			if err := sm.poll(); err != nil {
				return err
			}
			blk := pending
			if sm.splitChunks() && len(blk) > engine.DefaultCheckpointEvery {
				blk = blk[:engine.DefaultCheckpointEvery]
			}
			sm.feedOne(i, blk)
			pending = pending[len(blk):]
		}
		sm.gated[i] = false
		sm.gatedCount--
	}
	sm.pending = nil
	return nil
}

// flushHeld feeds each runner's held-back byte as ordinary data, so that
// every byte reported as consumed has been matched against even though the
// stream will never see a proper end.
func (sm *StreamMatcher) flushHeld() {
	for _, r := range sm.engines {
		if r != nil {
			r.FlushHeld()
		}
	}
	for _, r := range sm.lazies {
		if r != nil {
			r.FlushHeld()
		}
	}
}

// armDeadline starts the current call's ScanTimeout budget; a no-op when
// Options.ScanTimeout is zero.
func (sm *StreamMatcher) armDeadline() {
	if sm.budget > 0 {
		sm.deadline = time.Now().Add(sm.budget)
	}
}

// splitChunks reports whether Writes must be fed in checkpoint-sized blocks:
// required whenever poll can fail mid-chunk — a cancellable context or an
// armed ScanTimeout budget — so the failure is observed promptly and the
// consumed-byte count stays exact.
func (sm *StreamMatcher) splitChunks() bool { return sm.check != nil || sm.budget > 0 }

// poll checks the matcher's context and the armed ScanTimeout deadline,
// recording the first failure (the context's error takes precedence). On
// that first failure the runners' held bytes are flushed: the consumed-byte
// count already includes them, so they must be matched against. A deadline
// failure is sticky like a cancellation — the stream is wedged slow, and
// retrying the next Write against the same backlog would just burn another
// budget.
func (sm *StreamMatcher) poll() error {
	if sm.err != nil {
		return sm.err
	}
	var err error
	if sm.check != nil {
		err = sm.check()
	}
	if err == nil && !sm.deadline.IsZero() && time.Now().After(sm.deadline) {
		err = ErrScanTimeout
	}
	if err != nil {
		sm.err = err
		if errors.Is(err, ErrScanTimeout) {
			sm.timeouts++
		}
		noteDegraded(sm.rs.collector, err)
		sm.rs.traceScanError(err)
		sm.flushHeld()
	}
	return sm.err
}

// Write feeds the next chunk of the stream, honoring the io.Writer
// contract: it returns the number of bytes consumed — every one of them
// handed to the engines — and a non-nil error whenever that is short of
// len(p). Write fails with io.ErrClosedPipe after Close, and with the
// sticky context error (see Err) after a cancellation; a failed matcher
// consumes nothing.
func (sm *StreamMatcher) Write(p []byte) (int, error) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if sm.err != nil {
		return 0, sm.err
	}
	if sm.closed {
		return 0, io.ErrClosedPipe
	}
	if len(p) == 0 {
		return 0, nil
	}
	sm.armDeadline()
	if err := sm.poll(); err != nil {
		return 0, err
	}
	if sm.rs.chunkLat != nil {
		defer func(t0 time.Time) { sm.rs.chunkLat.Record(time.Since(t0).Nanoseconds()) }(time.Now())
	}
	if sm.rs.lat != nil {
		defer func(t0 time.Time) {
			sm.rs.lat.Record(telemetry.StageStreamWrite, time.Since(t0).Nanoseconds())
		}(time.Now())
	}
	if err := sm.prefilterAdmit(p); err != nil {
		return 0, err
	}
	// The chunk is fed in checkpoint-sized blocks so a cancelled context
	// stops consuming input promptly and the consumed-byte count stays
	// exact. The runners themselves hold back the most recent byte until
	// the stream end is known; it still counts as consumed because a
	// cancellation flushes it (see poll).
	n := 0
	for len(p) > 0 {
		blk := p
		if sm.splitChunks() && len(blk) > engine.DefaultCheckpointEvery {
			blk = blk[:engine.DefaultCheckpointEvery]
		}
		sm.feed(blk, false)
		p = p[len(blk):]
		n += len(blk)
		sm.consumed += int64(len(blk))
		if len(p) > 0 {
			if err := sm.poll(); err != nil {
				sm.wrote = true
				return n, err
			}
		}
	}
	sm.wrote = true
	return n, nil
}

// Close marks the stream end, flushing the runners' held bytes as final.
// Close is idempotent; a second Close returns the same result. Close is
// itself a checkpoint: on a matcher that failed — or whose context is found
// cancelled at Close — the final flush is skipped (the stream end was never
// observed, so $-anchored accepts must not fire), the held bytes are
// matched against as ordinary data, and the sticky error is returned.
func (sm *StreamMatcher) Close() error {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if sm.closed {
		return sm.err
	}
	sm.closed = true
	sm.armDeadline()
	ft0 := sm.rs.stageStart()
	if sm.poll() == nil {
		sm.feed(nil, true)
	}
	for i, r := range sm.engines {
		if r != nil && !sm.isGated(i) {
			r.End()
		}
	}
	for i, r := range sm.lazies {
		if r != nil && !sm.isGated(i) {
			r.End()
		}
	}
	for i, r := range sm.dfaRuns {
		if r != nil && !sm.isGated(i) {
			r.End()
		}
	}
	sm.rs.stageEnd(telemetry.StageStreamFlush, ft0)
	// Automata still gated here are skipped for good: each of their rules
	// requires a factor that never occurred in the stream.
	if sm.gatedCount > 0 {
		sm.pref.skipped = int64(sm.gatedCount)
		sm.pref.saved = int64(sm.gatedCount) * sm.consumed
		if sm.rs.trace != nil {
			for i := range sm.gated {
				if sm.gated[i] {
					sm.rs.trace.Record(telemetry.Event{Kind: telemetry.EventPrefilterSkip,
						Automaton: int32(i), Rule: -1, Offset: -1, Value: sm.consumed})
				}
			}
		}
	}
	sm.pushTelemetry()
	if sm.rs.trace != nil {
		sm.rs.trace.Record(telemetry.Event{Kind: telemetry.EventStreamEnd,
			Automaton: -1, Rule: -1, Offset: sm.consumed, Value: sm.matches})
	}
	if sm.onClose != nil {
		sm.onClose()
		sm.onClose = nil
	}
	return sm.err
}

// pushTelemetry folds the closed stream's counters into the ruleset-wide
// collector. Runs once, at Close — never on the byte path.
func (sm *StreamMatcher) pushTelemetry() {
	c := sm.rs.collector
	for i, r := range sm.engines {
		if r == nil || sm.isGated(i) {
			continue
		}
		t := r.Totals()
		c.AddScans(t.Scans)
		c.AddBytes(t.Symbols)
		c.AddMatches(t.Matches)
		c.AddAccelScan(t.AccelBytes)
		c.AddStrategyBytes(int(StrategyIMFAnt), t.Symbols)
	}
	for i, r := range sm.lazies {
		if r == nil || sm.isGated(i) {
			continue
		}
		t := r.Totals()
		c.AddScans(t.Scans)
		c.AddBytes(t.Symbols)
		c.AddMatches(t.Matches)
		c.AddLazyScan(t.CacheHits, t.CacheMisses, t.Flushes, t.Fallbacks)
		if t.Grows != 0 || t.Pins != 0 {
			c.AddLazyDegraded(t.Grows, t.Pins)
		}
		c.SetCachedStates(i, int64(r.CachedStates()))
		c.AddAccelScan(t.AccelBytes)
		c.SetAccelStates(i, int64(r.AccelStates()))
		c.AddStrategyBytes(int(StrategyLazyDFA), t.Symbols)
	}
	for i, r := range sm.dfaRuns {
		if r == nil || sm.isGated(i) {
			continue
		}
		t := r.Totals()
		c.AddScans(t.Scans)
		c.AddBytes(t.Symbols)
		c.AddMatches(t.Matches)
		c.AddStrategyBytes(int(StrategyDFA), t.Symbols)
	}
	// AC groups: the literal scan covered the whole stream, and it doubles
	// as the group's factor sweep in the prefilter accounting. Its sweeps
	// fold into the collector here directly and into the local counters only
	// after the admission sweep's own fold below, to keep both single-count.
	var acSweeps, acHits int64
	for i, sc := range sm.acRuns {
		if sc == nil {
			continue
		}
		c.AddScans(1)
		c.AddBytes(sm.consumed)
		c.AddMatches(sm.groupMatches[i])
		c.AddAccelScan(sc.Skipped())
		c.AddStrategyBytes(int(StrategyAC), sm.consumed)
		if sm.rs.prefEnabled {
			c.AddPrefilterScan(1, int64(sm.acDistinct[i]), 0, 0)
			acSweeps++
			acHits += int64(sm.acDistinct[i])
		}
	}
	for i, r := range sm.anchRuns {
		if r == nil {
			continue
		}
		c.AddScans(1)
		c.AddBytes(sm.consumed)
		c.AddMatches(sm.groupMatches[i])
		c.AddStrategyBytes(int(StrategyAnchored), sm.consumed)
	}
	if sm.sweep != nil {
		c.AddPrefilterScan(sm.pref.sweeps, sm.pref.hits, sm.pref.skipped, sm.pref.saved)
	}
	sm.pref.sweeps += acSweeps
	sm.pref.hits += acHits
	for id, n := range sm.ruleHits {
		if n != 0 {
			c.AddRuleHits(id, n)
		}
	}
}

// anchStream evaluates one anchored-literal group over a stream. Everything
// it needs is O(group) state: per rule an incremental prefix verdict and the
// positions of recent middle-violating bytes, plus one shared tail window of
// the group's longest suffix. `^` means stream offset 0 and `$` means the
// clean stream end, so suffix-bearing rules are decided at finish (Close)
// and `^lit` rules emit the moment their prefix completes mid-stream.
type anchStream struct {
	g        *anchGroup
	emit     func(fsa, end int)
	rules    []anchRuleState
	tail     []byte // the last maxSuffix bytes of the stream
	consumed int64
	finished bool
}

type anchRuleState struct {
	prefixOK  bool    // prefix still plausible (or confirmed once complete)
	emitted   bool    // `^lit` rule already reported its one event
	badBefore bool    // a violating byte is provably in the middle region
	recentBad []int64 // violating-byte positions still close enough to land in the suffix
}

func newAnchStream(g *anchGroup, emit func(fsa, end int)) *anchStream {
	st := &anchStream{g: g, emit: emit, rules: make([]anchRuleState, len(g.rules))}
	for i := range st.rules {
		st.rules[i].prefixOK = true
	}
	return st
}

// feed consumes the next chunk; base is the absolute offset of chunk[0].
func (st *anchStream) feed(base int64, chunk []byte) {
	for fsa := range st.g.rules {
		st.feedRule(fsa, base, chunk)
	}
	// Maintain the shared suffix window.
	if n := st.g.maxSuffix; n > 0 {
		if len(chunk) >= n {
			st.tail = append(st.tail[:0], chunk[len(chunk)-n:]...)
		} else {
			if drop := len(st.tail) + len(chunk) - n; drop > 0 {
				m := copy(st.tail, st.tail[drop:])
				st.tail = st.tail[:m]
			}
			st.tail = append(st.tail, chunk...)
		}
	}
	st.consumed = base + int64(len(chunk))
}

func (st *anchStream) feedRule(fsa int, base int64, chunk []byte) {
	r := &st.g.rules[fsa]
	rs := &st.rules[fsa]
	sh := &r.sh
	p := int64(len(sh.Prefix))
	// Incremental prefix compare while the stream is still inside it.
	if rs.prefixOK && sh.AnchorStart && base < p {
		for j := 0; j < len(chunk) && base+int64(j) < p; j++ {
			if chunk[j] != sh.Prefix[base+int64(j)] {
				rs.prefixOK = false
				break
			}
		}
	}
	if sh.AnchorStart && !sh.AnchorEnd {
		// `^lit`: its single event fires the moment the prefix completes.
		if rs.prefixOK && !rs.emitted && p > 0 && base+int64(len(chunk)) >= p {
			rs.emitted = true
			st.emit(fsa, int(p)-1)
		}
		return
	}
	if !r.hasBad || !rs.prefixOK || rs.badBefore {
		return
	}
	// Hunt bytes the middle cannot consume, at absolute positions >= p. A
	// bad byte that can no longer land in the suffix window of any future
	// stream end kills the rule outright; the handful that still could are
	// kept and re-judged at finish. Previously kept positions age out the
	// same way.
	s := int64(len(sh.Suffix))
	newEnd := base + int64(len(chunk))
	for _, pos := range rs.recentBad {
		if pos+s < newEnd {
			rs.badBefore = true
			rs.recentBad = nil
			return
		}
	}
	off := 0
	if base < p {
		off = int(p - base)
		if off > len(chunk) {
			off = len(chunk)
		}
	}
	// chunk[off:cut] holds positions already decided (pos+s < newEnd).
	cut := len(chunk) - int(s)
	if cut > off {
		if j := r.bad.Index(chunk[off:cut]); j >= 0 {
			rs.badBefore = true
			rs.recentBad = nil
			return
		}
		off = cut
	}
	h := chunk[off:]
	hb := base + int64(off)
	for {
		j := r.bad.Index(h)
		if j < 0 {
			break
		}
		rs.recentBad = append(rs.recentBad, hb+int64(j))
		h = h[j+1:]
		hb += int64(j) + 1
	}
}

// finish evaluates the suffix-bearing rules at the clean stream end. Runs at
// most once; error-path closes never reach it (`$` was never observed).
func (st *anchStream) finish() {
	if st.finished {
		return
	}
	st.finished = true
	L := st.consumed
	for fsa := range st.g.rules {
		r := &st.g.rules[fsa]
		rs := &st.rules[fsa]
		sh := &r.sh
		p, s := int64(len(sh.Prefix)), int64(len(sh.Suffix))
		switch {
		case sh.AnchorStart && !sh.AnchorEnd:
			// `^lit` already emitted mid-stream.
		case sh.AnchorStart && sh.AnchorEnd && !sh.HasMiddle:
			// `^lit$`: exact equality with the whole stream.
			if rs.prefixOK && L == p && p > 0 {
				st.emit(fsa, int(L)-1)
			}
		case !sh.AnchorStart && sh.AnchorEnd:
			// `lit$`: one event at the last byte.
			if s > 0 && L >= s && st.tailEndsWith(sh.Suffix) {
				st.emit(fsa, int(L)-1)
			}
		default:
			// `^prefix<set>{m,}suffix$`.
			if !rs.prefixOK || rs.badBefore || L < int64(r.minLen) || L == 0 {
				continue
			}
			if !st.tailEndsWith(sh.Suffix) {
				continue
			}
			bad := false
			for _, pos := range rs.recentBad {
				if pos+s < L {
					bad = true
					break
				}
			}
			if !bad {
				st.emit(fsa, int(L)-1)
			}
		}
	}
}

// tailEndsWith reports whether the stream ends with lit (lit fits in the
// tail window by construction: it is at most maxSuffix long).
func (st *anchStream) tailEndsWith(lit []byte) bool {
	if len(st.tail) < len(lit) {
		return false
	}
	return bytes.Equal(st.tail[len(st.tail)-len(lit):], lit)
}

// Err returns the sticky error that failed the stream, if any: the
// context's error once a cancellation was observed, or ErrScanTimeout once
// a Write overran Options.ScanTimeout. A closed, healthy matcher reports
// nil.
func (sm *StreamMatcher) Err() error {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.err
}

// Matches returns the number of match events reported so far. After Close
// it is the total for the stream.
func (sm *StreamMatcher) Matches() int64 {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.matches
}
