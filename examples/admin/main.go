// Operational observability: run a hot-swappable Registry behind the obs
// admin surface, generate matching traffic, hot-swap the ruleset mid-run,
// and scrape /metrics and /statusz over real HTTP — the monitoring loop an
// operator (or Prometheus) runs against a long-lived matching service.
//
//	go run ./examples/admin
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"time"

	imfant "repro"
	"repro/obs"
)

var v1Rules = []string{
	`ERROR`,
	`timeout after [0-9]+ms`,
	`connection (refused|reset)`,
	`/etc/passwd`,
}

var v2Rules = []string{
	`ERROR`,
	`timeout after [0-9]+ms`,
	`connection (refused|reset)`,
	`/etc/passwd`,
	`deadlock detected`, // the new signature the hot swap ships
}

func traffic(n int) []byte {
	r := rand.New(rand.NewSource(7))
	lines := []string{
		"INFO request ok\n", "INFO cache hit\n",
		"ERROR upstream failed\n", "WARN timeout after 1500ms\n",
		"ERROR connection refused\n", "INFO deadlock detected in txn 9\n",
	}
	var b strings.Builder
	for b.Len() < n {
		b.WriteString(lines[r.Intn(len(lines))])
	}
	return []byte(b.String())
}

func main() {
	// Version 1: latency attribution and tracing on, so /metrics carries
	// stage histograms and /tracez has a tail to show.
	reg, err := imfant.NewRegistry(v1Rules, imfant.Options{Latency: true, TraceCapacity: 512})
	if err != nil {
		log.Fatal(err)
	}

	// Serve the admin surface on an ephemeral local port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: obs.Handler(reg)}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Println("admin surface:", base)

	// Background traffic against whatever version is current.
	stop := make(chan struct{})
	go func() {
		in := traffic(64 << 10)
		for {
			select {
			case <-stop:
				return
			default:
				reg.FindAll(in)
			}
		}
	}()

	fetch := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}

	time.Sleep(50 * time.Millisecond)
	fmt.Println("\n--- /statusz on version 1 ---")
	fmt.Println(firstLines(fetch("/statusz"), 3))

	// Hot swap to version 2 while traffic runs: no scan is dropped, the
	// next request observes the new rules.
	if _, err := reg.Update(v2Rules, imfant.Options{Latency: true, TraceCapacity: 512}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- /statusz after hot swap ---")
	fmt.Println(firstLines(fetch("/statusz"), 3))

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	if err := reg.DrainOld(ctx); err != nil {
		log.Fatal(err)
	}
	cancel()

	fmt.Println("--- /metrics (excerpt) ---")
	for _, line := range strings.Split(fetch("/metrics"), "\n") {
		if strings.HasPrefix(line, "imfant_scans_total") ||
			strings.HasPrefix(line, "imfant_matches_total") ||
			strings.HasPrefix(line, "imfant_ruleset_version") {
			fmt.Println(line)
		}
	}

	close(stop)
	srv.Close()
}

// firstLines returns the first n lines of s.
func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
