// Quickstart: compile a small ruleset into an MFSA and scan a payload.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	imfant "repro"
)

func main() {
	rules := []string{
		`GET /admin`,
		`GET /cgi-bin/[a-z]{2,8}\.cgi`,
		`cmd\.exe`,
		`SELECT .{1,32}FROM`,
		`\x90{4,}`, // NOP sled
	}

	// MergeFactor 0 merges all rules into one Multi-RE FSA; the activation
	// function keeps per-rule matches exact.
	rs, err := imfant.Compile(rules, imfant.Options{MergeFactor: 0})
	if err != nil {
		log.Fatal(err)
	}

	statesPct, transPct := rs.Compression()
	fmt.Printf("compiled %d rules into %d automaton(s)\n", rs.NumRules(), rs.NumAutomata())
	fmt.Printf("merging saved %.1f%% states and %.1f%% transitions\n", statesPct, transPct)

	payload := []byte("POST /x HTTP/1.1\r\n\r\nGET /cgi-bin/phf.cgi?cmd.exe " +
		"SELECT name FROM users \x90\x90\x90\x90\x90")
	for _, m := range rs.FindAll(payload) {
		fmt.Printf("rule %d %-28q matched, ending at offset %d\n", m.Rule, m.Pattern, m.End)
	}
	fmt.Printf("total matches: %d\n", rs.Count(payload))
}
