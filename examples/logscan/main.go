// Log mining: compile an error-signature ruleset once, persist it as
// extended ANML, and reload it in a scanner process — the ahead-of-time
// compilation workflow the paper's framework targets (compile once with
// mfsac, execute many times with imfant).
//
//	go run ./examples/logscan
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"strings"

	imfant "repro"
)

var errorRules = []string{
	`ERROR`,
	`FATAL`,
	`panic: `,
	`segfault at [0-9a-f]{4,16}`,
	`OOM[- ]killer`,
	`out of memory`,
	`connection (refused|reset|timed out)`,
	`TLS handshake (failure|timeout)`,
	`disk [0-9]{1,3}% full`,
	`latency [0-9]{4,6}ms`,
	`HTTP/1\.[01]" 5[0-9]{2}`,
	`retry [0-9]{2,4} exhausted`,
	`deadlock detected`,
	`checksum mismatch`,
	`replica lag [0-9]{3,6}s`,
}

func syntheticLog(lines int) []byte {
	r := rand.New(rand.NewSource(11))
	normal := []string{
		`INFO request served path=/api/items status=200`,
		`DEBUG cache hit key=user:%d`,
		`INFO gc pause 3ms`,
		`INFO connection established peer=10.0.0.%d`,
	}
	bad := []string{
		`ERROR connection refused peer=10.0.0.%d`,
		`FATAL out of memory in worker %d`,
		`WARN latency 12%03dms on shard %d`,
		`ERROR HTTP/1.1" 503 upstream`,
		`WARN disk 9%d%% full on /var`,
		`ERROR segfault at 7f3a00%02x`,
	}
	var sb strings.Builder
	for i := 0; i < lines; i++ {
		var tmpl string
		if r.Intn(12) == 0 {
			tmpl = bad[r.Intn(len(bad))]
		} else {
			tmpl = normal[r.Intn(len(normal))]
		}
		fmt.Fprintf(&sb, "2026-07-06T10:%02d:%02d ", r.Intn(60), r.Intn(60))
		fmt.Fprintf(&sb, strings.ReplaceAll(tmpl, "%03d", "%d"), r.Intn(256), r.Intn(64))
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

func main() {
	// Compile once (the mfsac side)...
	compiled, err := imfant.Compile(errorRules, imfant.Options{MergeFactor: 0})
	if err != nil {
		log.Fatal(err)
	}
	var anmlBlob bytes.Buffer
	if err := compiled.WriteANML(&anmlBlob); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d signatures → %d bytes of extended ANML\n", compiled.NumRules(), anmlBlob.Len())

	// ... and reload in the scanning process (the imfant side).
	scanner, err := imfant.LoadANML(&anmlBlob, imfant.Options{})
	if err != nil {
		log.Fatal(err)
	}

	logs := syntheticLog(20000)
	perRule := scanner.CountPerRule(logs)
	fmt.Printf("scanned %d KiB of logs:\n", len(logs)>>10)
	total := int64(0)
	for rule, n := range perRule {
		if n > 0 {
			fmt.Printf("  %6d × %s\n", n, scanner.Patterns()[rule])
		}
		total += n
	}
	fmt.Printf("total findings: %d\n", total)

	// The reloaded ruleset matches identically to the in-process one.
	if compiled.Count(logs) != scanner.Count(logs) {
		log.Fatal("ANML round-trip changed matching behaviour")
	}
	fmt.Println("ANML round-trip verified: reloaded ruleset matches identically")
}
