// Streaming: scan a stream incrementally through the io.WriteCloser
// matcher — the deployment shape of a DPI tap, where packets arrive in
// chunks and matches must be exact across chunk boundaries.
//
//	go run ./examples/streaming
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"

	imfant "repro"
)

func main() {
	rules := []string{
		`USER [a-z0-9_]{1,16}`,
		`PASS [^\r\n]{1,32}`,
		`RETR /etc/passwd`,
		`\x00\x00\x00\x17`, // suspicious length prefix
		`quit$`,
	}
	rs, err := imfant.Compile(rules, imfant.Options{MergeFactor: 0})
	if err != nil {
		log.Fatal(err)
	}

	session := []byte("220 ftp ready\r\nUSER alice\r\nPASS hunter2\r\n" +
		"RETR /etc/passwd\r\n\x00\x00\x00\x17payload...\r\nquit")

	// Feed the "capture" in 7-byte chunks, as a NIC tap would. Matches
	// straddling chunk boundaries are still found, with absolute offsets.
	sm := rs.NewStreamMatcher(func(m imfant.Match) {
		fmt.Printf("  offset %3d  rule %d  %s\n", m.End, m.Rule, m.Pattern)
	})
	if _, err := io.CopyBuffer(sm, bytes.NewReader(session), make([]byte, 7)); err != nil {
		log.Fatal(err)
	}
	if err := sm.Close(); err != nil { // required: flushes the $-anchored rules
		log.Fatal(err)
	}
	fmt.Printf("total alerts: %d\n", sm.Matches())

	// The same session scanned in one shot reports identical matches.
	if int64(len(rs.FindAll(session))) != sm.Matches() {
		log.Fatal("chunked and whole-buffer scans disagree")
	}
	fmt.Println("chunked scan verified against whole-buffer scan")
}
