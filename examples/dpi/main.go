// Deep packet inspection: the motivating scenario of the paper's
// introduction. A Snort-style signature set is compiled at several merging
// factors and executed over synthetic HTTP traffic, comparing the naive
// one-FSA-per-rule execution (M=1) with merged MFSAs in single- and
// multi-threaded configurations.
//
//	go run ./examples/dpi
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	imfant "repro"
)

// signatures is a web-attack ruleset in the style of Snort/Bro HTTP rules:
// heavily shared prefixes ("GET /", "User-Agent:") are exactly the
// morphological similarity the MFSA merging exploits.
var signatures = []string{
	`GET /admin/config\.php`,
	`GET /admin/login\.php`,
	`GET /cgi-bin/phf`,
	`GET /cgi-bin/test-cgi`,
	`GET /cgi-bin/[a-z]{1,12}\.(cgi|pl)`,
	`GET /scripts/\.\./`,
	`GET /msadc/`,
	`GET /_vti_bin/`,
	`POST /admin/upload`,
	`POST /cgi-bin/formmail`,
	`POST /xmlrpc\.php`,
	`HEAD /backup`,
	`User-Agent: sqlmap`,
	`User-Agent: nikto`,
	`User-Agent: nmap`,
	`User-Agent: masscan`,
	`cmd\.exe(\?|/c)`,
	`/etc/passwd`,
	`/etc/shadow`,
	`\.\./\.\./\.\./`,
	`SELECT .{1,48}FROM`,
	`UNION SELECT`,
	`INSERT INTO`,
	`DROP TABLE`,
	`<script>alert`,
	`javascript:`,
	`onerror=`,
	`eval\(`,
	`base64_decode\(`,
	`wget http`,
	`curl http`,
	`chmod \+x`,
	`/bin/sh`,
	`nc -l -p [0-9]{2,5}`,
	`\x90{8,}`,
	`\x41{16,}`,
	`%00%00`,
	`%u9090`,
	`Content-Length: 99999`,
	`Transfer-Encoding: chunked.{0,16}chunked`,
}

func trafficStream(size int) []byte {
	r := rand.New(rand.NewSource(7))
	lines := []string{
		"GET /index.html HTTP/1.1", "Host: example.com",
		"User-Agent: Mozilla/5.0", "Accept: */*",
		"POST /api/v2/items HTTP/1.1", "Content-Type: application/json",
		"GET /static/app.js HTTP/1.1", "Cookie: session=",
	}
	attacks := []string{
		"GET /cgi-bin/phf?Qalias=x HTTP/1.0",
		"User-Agent: sqlmap/1.7",
		"id=1 UNION SELECT password FROM users",
		"GET /scripts/../../winnt/cmd.exe?/c+dir",
		"\x90\x90\x90\x90\x90\x90\x90\x90\x90\x90",
	}
	var sb strings.Builder
	for sb.Len() < size {
		if r.Intn(20) == 0 {
			sb.WriteString(attacks[r.Intn(len(attacks))])
		} else {
			sb.WriteString(lines[r.Intn(len(lines))])
		}
		sb.WriteString("\r\n")
	}
	return []byte(sb.String()[:size])
}

func main() {
	traffic := trafficStream(512 << 10)
	fmt.Printf("scanning %d KiB of traffic with %d signatures\n\n", len(traffic)>>10, len(signatures))

	type cfg struct {
		name    string
		m       int
		threads int
	}
	configs := []cfg{
		{"multiple FSAs, 1 thread (naive)", 1, 1},
		{"multiple FSAs, 4 threads", 1, 4},
		{"MFSA M=8, 1 thread", 8, 1},
		{"MFSA M=all, 1 thread", 0, 1},
		{"MFSA M=all, 4 threads", 0, 4},
	}
	var baseline time.Duration
	for _, c := range configs {
		rs, err := imfant.Compile(signatures, imfant.Options{MergeFactor: c.m})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		alerts, err := rs.CountParallel(traffic, c.threads)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if baseline == 0 {
			baseline = elapsed
		}
		sp, _ := rs.Compression()
		fmt.Printf("%-34s %4d automata  %6.2f%% state compression  %9v  %5.2fx  (%d alerts)\n",
			c.name, rs.NumAutomata(), sp, elapsed.Round(10*time.Microsecond),
			float64(baseline)/float64(elapsed), alerts)
	}

	// Show the actual alerts for a small excerpt.
	fmt.Println("\nfirst alerts in the stream:")
	rs := imfant.MustCompile(signatures, imfant.Options{})
	shown := 0
	rs.Scan(traffic, func(m imfant.Match) {
		if shown < 5 {
			fmt.Printf("  offset %6d  rule %2d  %s\n", m.End, m.Rule, m.Pattern)
			shown++
		}
	})

	// Runtime telemetry: run the same traffic through the lazy-DFA engine
	// with a warm Scanner — the deployment configuration — and read the
	// cache counters that tell an operator whether LazyDFAMaxStates is
	// sized right. rs.StatsVar() exposes the same snapshot as an
	// expvar.Var for a live /debug/vars endpoint.
	fmt.Println("\nlazy-DFA telemetry over 3 scans (warm cache):")
	lrs := imfant.MustCompile(signatures, imfant.Options{
		Engine:      imfant.EngineLazyDFA,
		KeepOnMatch: true,
	})
	sc := lrs.NewScanner()
	for i := 0; i < 3; i++ {
		sc.Count(traffic)
	}
	st := sc.Stats()
	fmt.Printf("  scans %d, %d KiB matched against, %d match events\n",
		st.Scans, st.BytesScanned>>10, st.Matches)
	if l := st.Lazy; l != nil {
		fmt.Printf("  cache: %d states (cap %d), hit rate %.2f%%, %d flushes, %d fallbacks\n",
			l.CachedStates, l.MaxStates, 100*l.HitRate(), l.Flushes, l.Fallbacks)
	}
	hot, hits := 0, int64(0)
	for id, n := range st.RuleHits {
		if n > hits {
			hot, hits = id, n
		}
	}
	fmt.Printf("  hottest rule: %d (%s) with %d hits\n", hot, signatures[hot], hits)

	// Execution profiling: recompile with the sampling profiler on and ask
	// where the merged automaton actually spends its time. Hot states shared
	// by many rules are the merging payoff; a hot state owned by one rule is
	// that rule's own cost. The same report drives cmd/mfsaprof's heat maps.
	fmt.Println("\nexecution profile over the same traffic (stride 64):")
	prs := imfant.MustCompile(signatures, imfant.Options{
		Engine:      imfant.EngineLazyDFA,
		KeepOnMatch: true,
		Profile:     true,
	})
	psc := prs.NewScanner()
	for i := 0; i < 3; i++ {
		psc.Count(traffic)
	}
	p := prs.Profile()
	fmt.Printf("  scan latency: p50=%v p99=%v (%d scans)\n",
		time.Duration(p.ScanLatency.Percentile(0.50)).Round(time.Microsecond),
		time.Duration(p.ScanLatency.Percentile(0.99)).Round(time.Microsecond),
		p.ScanLatency.Count())
	fmt.Println("  top 5 hot states:")
	for _, h := range p.HotStates(5) {
		fmt.Printf("    state %-5d %5.1f%% of visits, shared by %d rules\n",
			h.State, 100*h.Share, len(h.Rules))
	}
	fmt.Println("  top 5 rules by absorbed automaton time:")
	for _, rh := range p.HotRules(5) {
		fmt.Printf("    rule %-3d %5.1f%%  %s\n", rh.Rule, 100*rh.Share, rh.Pattern)
	}
}
