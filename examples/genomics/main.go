// Genome analysis: scanning a protein sequence database for PROSITE-style
// motifs, the paper's bioinformatics use case. Motifs over the 20-letter
// amino-acid alphabet are class-heavy, which makes many rules active
// simultaneously — the Table II effect this example surfaces via the
// activity statistics.
//
//	go run ./examples/genomics
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	imfant "repro"
)

const aminos = "ACDEFGHIKLMNPQRSTVWY"

// motifs are simplified real PROSITE patterns (x → [ACDEF...], x(2) →
// class{2}); several share sub-motifs, which the MFSA merges.
var motifs = []string{
	// N-glycosylation site: N-{P}-[ST]-{P}
	`N[ACDEFGHIKLMNQRSTVWY][ST][ACDEFGHIKLMNQRSTVWY]`,
	// Protein kinase C phosphorylation site: [ST]-x-[RK]
	`[ST][` + aminos + `][RK]`,
	// Casein kinase II phosphorylation site: [ST]-x(2)-[DE]
	`[ST][` + aminos + `]{2}[DE]`,
	// Tyrosine kinase phosphorylation site.
	`[RK][` + aminos + `]{2}[DE][` + aminos + `]{2}Y`,
	// N-myristoylation site: G-{EDRKHPFYW}-x(2)-[STAGCN]-{P}
	`G[ACGILMNQSTV][` + aminos + `]{2}[STAGCN][ACDEFGHIKLMNQRSTVWY]`,
	// Amidation site: x-G-[RK]-[RK]
	`[` + aminos + `]G[RK][RK]`,
	// Zinc finger C2H2: C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-H
	`C[` + aminos + `]{2,4}C[` + aminos + `]{3}[LIVMFYWC][` + aminos + `]{8}H[` + aminos + `]{3,5}H`,
	// Leucine zipper: L-x(6)-L-x(6)-L-x(6)-L
	`L[` + aminos + `]{6}L[` + aminos + `]{6}L[` + aminos + `]{6}L`,
	// ATP/GTP binding P-loop: [AG]-x(4)-G-K-[ST]
	`[AG][` + aminos + `]{4}GK[ST]`,
	// EF-hand calcium-binding domain (simplified core).
	`D[` + aminos + `]D[` + aminos + `]DG[` + aminos + `]{2}[DE]`,
}

// syntheticProteome emits a random protein database with a few planted
// motif instances per kilobase.
func syntheticProteome(size int) []byte {
	r := rand.New(rand.NewSource(42))
	planted := []string{
		"NGSA",            // N-glycosylation
		"SARK",            // kinase C site (S-A-R-K: [ST] x [RK])
		"TAADE",           // casein kinase II-ish
		"GASTSA",          // myristoylation-ish
		"AGKRK",           // amidation
		"AGAAAAGKS",       // P-loop
		"LAAAAAALBBBBBBL", // not quite a zipper (B not an amino; replaced below)
	}
	var sb strings.Builder
	for sb.Len() < size {
		n := 40 + r.Intn(120)
		for i := 0; i < n; i++ {
			sb.WriteByte(aminos[r.Intn(len(aminos))])
		}
		p := planted[r.Intn(len(planted))]
		sb.WriteString(strings.ReplaceAll(p, "B", string(aminos[r.Intn(len(aminos))])))
	}
	return []byte(sb.String()[:size])
}

func main() {
	proteome := syntheticProteome(256 << 10)

	rs, err := imfant.Compile(motifs, imfant.Options{MergeFactor: 0})
	if err != nil {
		log.Fatal(err)
	}
	statesPct, transPct := rs.Compression()
	fmt.Printf("compiled %d PROSITE-style motifs into one MFSA (%d states)\n", rs.NumRules(), rs.States())
	fmt.Printf("compression vs standalone automata: %.1f%% states, %.1f%% transitions\n\n", statesPct, transPct)

	hits := rs.CountPerRule(proteome)
	fmt.Printf("scanned %d KiB of synthetic proteome:\n", len(proteome)>>10)
	for rule, n := range hits {
		name := motifs[rule]
		if len(name) > 48 {
			name = name[:45] + "..."
		}
		fmt.Printf("  motif %2d  %-48s %7d sites\n", rule, name, n)
	}

	avg, max := rs.Activity(proteome)
	fmt.Printf("\nactive (state,motif) pairs per residue: %.2f (max %d motifs at once)\n", avg, max)
	fmt.Println("class-heavy motifs keep many rules active per symbol — the Table II effect")
}
